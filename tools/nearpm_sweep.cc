// nearpm_sweep: design-space exploration over device geometries.
//
// Fans a config grid -- NearPM units per device x Request-FIFO depth x AXI
// bandwidth -- across a set of workloads, runs every cell in the simulated
// platform, folds each run's trace through the profiler (the
// attribution-sum invariant must hold in every cell or the sweep fails),
// and reports throughput against the geometry's silicon-area proxy with the
// Pareto-optimal cells marked. Every reported number except wall_ms is
// virtual-time deterministic: the same grid on the same sources reproduces
// bit-for-bit, which the CI sweep-smoke job gates with --tolerance 0.
//
//   --workloads=A,B     comma list of workloads (default btree,hashmap)
//   --mechanism=NAME    crash-consistency mechanism (default logging)
//   --mode=NAME         execution mode (default nearpm_md)
//   --ops=N             operations per workload after setup (default 300)
//   --threads=N         application threads (default 1)
//   --units=LIST        unit-count axis (default 2,4,8)
//   --fifo=LIST         Request-FIFO depth axis (default 8,32,64)
//   --axi-gbps=LIST     AXI bandwidth axis in GB/s (default 2,4,8)
//   --base-config=FILE  geometry every cell starts from (pipeline stage
//                       widths, LSQ bound, cost constants; default
//                       calibrated seed geometry)
//   --json-out=FILE     check_bench-schema JSON (one benchmark per cell)
//   --csv-out=FILE      one row per cell for plotting the Pareto front
//   --quiet             suppress the per-cell progress table
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/fuzz/corpus.h"
#include "src/hwmodel/hw_config.h"
#include "src/prof/profile.h"
#include "src/workloads/workload.h"

namespace nearpm {
namespace {

struct CliOptions {
  std::vector<std::string> workloads = {"btree", "hashmap"};
  std::string mechanism = "logging";
  std::string mode = "nearpm_md";
  std::uint64_t ops = 300;
  int threads = 1;
  std::vector<int> units = {2, 4, 8};
  std::vector<int> fifo = {8, 32, 64};
  std::vector<double> axi_gbps = {2.0, 4.0, 8.0};
  std::string base_config;
  std::string json_out;
  std::string csv_out;
  std::uint64_t initial_keys = 200;
  std::uint64_t seed = 7;
  bool quiet = false;
};

// One evaluated grid cell.
struct Cell {
  hwmodel::HwConfig hw;
  double area = 0.0;
  double throughput_mops = 0.0;
  double makespan_ns = 0.0;       // summed across workloads
  double conflict_stall_ns = 0.0; // profiler attribution, summed
  std::uint64_t lsq_stalls = 0;   // device stats, summed
  std::uint64_t slices = 0;
  bool pareto = false;
  double wall_ms = 0.0;

  std::string Name() const {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "sweep/u%d/f%zu/axi%g",
                  hw.units_per_device, hw.fifo_depth, hw.AxiGbps());
    return buf;
  }
};

bool ParseUint(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDoubleList(const char* text, std::vector<double>* out) {
  out->clear();
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p) {
      return false;
    }
    out->push_back(v);
    p = end;
    if (*p == ',') {
      ++p;
    } else if (*p != '\0') {
      return false;
    }
  }
  return !out->empty();
}

bool ParseIntList(const char* text, std::vector<int>* out) {
  std::vector<double> v;
  if (!ParseDoubleList(text, &v)) {
    return false;
  }
  out->clear();
  for (double d : v) {
    if (d < 1 || d != static_cast<double>(static_cast<int>(d))) {
      return false;
    }
    out->push_back(static_cast<int>(d));
  }
  return true;
}

std::vector<std::string> SplitNames(const char* text) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) {
        out.push_back(cur);
      }
      cur.clear();
      if (*p == '\0') {
        break;
      }
    } else {
      cur += *p;
    }
  }
  return out;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workloads=A,B] [--mechanism=NAME] [--mode=NAME]\n"
      "          [--ops=N] [--threads=N] [--units=LIST] [--fifo=LIST]\n"
      "          [--axi-gbps=LIST] [--base-config=FILE] [--json-out=FILE]\n"
      "          [--csv-out=FILE] [--initial-keys=N] [--seed=N] [--quiet]\n",
      argv0);
  return 2;
}

// Runs one workload under `hw` and folds the trace into the cell. Returns
// false (after printing) on setup/op failure or an attribution violation.
bool RunCellWorkload(const CliOptions& cli, const std::string& name,
                     Mechanism mechanism, ExecMode mode, Cell* cell) {
  auto workload = CreateWorkload(name);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload %s\n", name.c_str());
    return false;
  }
  TraceRecorder recorder;
  RuntimeOptions opts;
  opts.mode = mode;
  opts.hw = cell->hw;
  opts.max_threads = cli.threads;
  opts.pm_size = 512ull << 20;
  opts.retain_crash_state = false;
  Runtime rt(opts);
  rt.AttachTrace(&recorder);
  PoolArena arena(0);

  WorkloadConfig wc;
  wc.mechanism = mechanism;
  wc.threads = cli.threads;
  wc.initial_keys = cli.initial_keys;
  wc.seed = cli.seed;
  Status st = workload->Setup(rt, arena, wc);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: setup(%s) failed: %s\n", cell->Name().c_str(),
                 name.c_str(), st.ToString().c_str());
    return false;
  }
  rt.DrainDevices(0);

  const SimTime measure_begin = rt.stats().MaxThreadTime();
  Rng rng(cli.seed * 31 + 1);
  for (std::uint64_t i = 0; i < cli.ops; ++i) {
    const ThreadId t = static_cast<ThreadId>(i % cli.threads);
    st = workload->RunOp(t, rng);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: op %llu (%s) failed: %s\n",
                   cell->Name().c_str(), static_cast<unsigned long long>(i),
                   name.c_str(), st.ToString().c_str());
      return false;
    }
  }
  for (int t = 0; t < cli.threads; ++t) {
    rt.DrainDevices(static_cast<ThreadId>(t));
  }
  cell->makespan_ns +=
      static_cast<double>(rt.stats().MaxThreadTime() - measure_begin);
  for (int d = 0; d < rt.num_devices(); ++d) {
    cell->lsq_stalls += rt.device(d).stats().lsq_stalls;
  }

  // Every cell's trace must satisfy the profiler's attribution-sum
  // invariant: the seven phases tile each request's end-to-end span exactly
  // even under the pipelined geometry. A violation is a model bug, not a
  // data point.
  const Profile profile = BuildProfile(recorder.Snapshot());
  if (profile.attribution_violations > 0 || profile.incomplete_slices > 0) {
    std::fprintf(stderr,
                 "%s: %s violates the attribution invariant "
                 "(%llu violations, %llu incomplete slices)\n",
                 cell->Name().c_str(), name.c_str(),
                 static_cast<unsigned long long>(
                     profile.attribution_violations),
                 static_cast<unsigned long long>(profile.incomplete_slices));
    return false;
  }
  cell->slices += profile.slices.size();
  cell->conflict_stall_ns +=
      profile.phase_total_ns[static_cast<int>(AttrPhase::kConflictStall)];
  return true;
}

void MarkParetoFront(std::vector<Cell>* cells) {
  // A cell is on the front unless some other cell dominates it: at least as
  // fast AND at most as expensive, strictly better on one axis.
  for (Cell& c : *cells) {
    c.pareto = true;
    for (const Cell& other : *cells) {
      const bool no_worse = other.throughput_mops >= c.throughput_mops &&
                            other.area <= c.area;
      const bool strictly_better = other.throughput_mops > c.throughput_mops ||
                                   other.area < c.area;
      if (no_worse && strictly_better) {
        c.pareto = false;
        break;
      }
    }
  }
}

std::string Json(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string RenderJson(const CliOptions& cli,
                       const std::vector<Cell>& cells) {
  std::string out = "{\n";
  out += "  \"context\": {\"tool\": \"nearpm_sweep\", \"mechanism\": \"" +
         cli.mechanism + "\", \"mode\": \"" + cli.mode +
         "\", \"ops\": " + std::to_string(cli.ops) +
         ", \"threads\": " + std::to_string(cli.threads) +
         ", \"seed\": " + std::to_string(cli.seed) + "},\n";
  // Wall time is the only nondeterministic counter; the override rides the
  // baseline so `check_bench.py --tolerance 0` still gates every simulated
  // counter bit-for-bit after a baseline regeneration.
  out += "  \"tolerance_overrides\": {\"wall_ms\": 1e12},\n";
  out += "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out += "    {\"name\": \"" + c.Name() + "\", \"iterations\": 1";
    out += ", \"units\": " + std::to_string(c.hw.units_per_device);
    out += ", \"fifo_depth\": " + std::to_string(c.hw.fifo_depth);
    out += ", \"axi_gbps\": " + Json(c.hw.AxiGbps());
    out += ", \"lsq_depth\": " + std::to_string(c.hw.pipeline.lsq_depth);
    out += ", \"area_proxy\": " + Json(c.area);
    out += ", \"throughput_mops\": " + Json(c.throughput_mops);
    out += ", \"makespan_ns\": " + Json(c.makespan_ns);
    out += ", \"conflict_stall_ns\": " + Json(c.conflict_stall_ns);
    out += ", \"lsq_stalls\": " + std::to_string(c.lsq_stalls);
    out += ", \"slices\": " + std::to_string(c.slices);
    out += ", \"pareto\": " + std::string(c.pareto ? "1" : "0");
    out += ", \"wall_ms\": " + Json(c.wall_ms);
    out += i + 1 < cells.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string RenderCsv(const std::vector<Cell>& cells) {
  std::string out =
      "name,units,fifo_depth,axi_gbps,lsq_depth,area_proxy,"
      "throughput_mops,makespan_ns,conflict_stall_ns,lsq_stalls,pareto\n";
  for (const Cell& c : cells) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s,%d,%zu,%g,%d,%g,%g,%g,%g,%llu,%d\n",
                  c.Name().c_str(), c.hw.units_per_device, c.hw.fifo_depth,
                  c.hw.AxiGbps(), c.hw.pipeline.lsq_depth, c.area,
                  c.throughput_mops, c.makespan_ns, c.conflict_stall_ns,
                  static_cast<unsigned long long>(c.lsq_stalls),
                  c.pareto ? 1 : 0);
    out += buf;
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

int SweepMain(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    std::uint64_t n = 0;
    const auto match = [&](const char* name) {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) != 0 || argv[i][len] != '=') {
        return false;
      }
      value = argv[i] + len + 1;
      return true;
    };
    if (match("--workloads")) {
      cli.workloads = SplitNames(value);
      if (cli.workloads.empty()) return Usage(argv[0]);
    } else if (match("--mechanism")) {
      cli.mechanism = value;
    } else if (match("--mode")) {
      cli.mode = value;
    } else if (match("--ops")) {
      if (!ParseUint(value, &cli.ops) || cli.ops == 0) return Usage(argv[0]);
    } else if (match("--threads")) {
      if (!ParseUint(value, &n) || n == 0) return Usage(argv[0]);
      cli.threads = static_cast<int>(n);
    } else if (match("--units")) {
      if (!ParseIntList(value, &cli.units)) return Usage(argv[0]);
    } else if (match("--fifo")) {
      if (!ParseIntList(value, &cli.fifo)) return Usage(argv[0]);
    } else if (match("--axi-gbps")) {
      if (!ParseDoubleList(value, &cli.axi_gbps)) return Usage(argv[0]);
    } else if (match("--base-config")) {
      cli.base_config = value;
    } else if (match("--json-out")) {
      cli.json_out = value;
    } else if (match("--csv-out")) {
      cli.csv_out = value;
    } else if (match("--initial-keys")) {
      if (!ParseUint(value, &cli.initial_keys)) return Usage(argv[0]);
    } else if (match("--seed")) {
      if (!ParseUint(value, &cli.seed)) return Usage(argv[0]);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      cli.quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }

  const auto mechanism = fuzz::MechanismFromName(cli.mechanism);
  if (!mechanism.ok()) {
    std::fprintf(stderr, "unknown mechanism %s\n", cli.mechanism.c_str());
    return 2;
  }
  const auto mode = fuzz::ExecModeFromName(cli.mode);
  if (!mode.ok()) {
    std::fprintf(stderr, "unknown mode %s\n", cli.mode.c_str());
    return 2;
  }

  hwmodel::HwConfig base;
  if (!cli.base_config.empty()) {
    auto hw = hwmodel::LoadHwConfigFile(cli.base_config);
    if (!hw.ok()) {
      std::fprintf(stderr, "--base-config: %s\n",
                   hw.status().ToString().c_str());
      return 2;
    }
    base = *hw;
  }

  std::vector<Cell> cells;
  for (int units : cli.units) {
    for (int fifo : cli.fifo) {
      for (double gbps : cli.axi_gbps) {
        Cell cell;
        cell.hw = base;
        cell.hw.units_per_device = units;
        cell.hw.fifo_depth = static_cast<std::size_t>(fifo);
        cell.hw.cost.ndp_dma_ns_per_byte = 1.0 / gbps;
        const Status valid = cell.hw.Validate();
        if (!valid.ok()) {
          std::fprintf(stderr, "%s: invalid geometry: %s\n",
                       cell.Name().c_str(), valid.ToString().c_str());
          return 2;
        }
        cell.area = cell.hw.AreaProxy();

        const auto wall_begin = std::chrono::steady_clock::now();
        double ops_total = 0.0;
        for (const std::string& name : cli.workloads) {
          if (!RunCellWorkload(cli, name, *mechanism, *mode, &cell)) {
            return 1;
          }
          ops_total += static_cast<double>(cli.ops);
        }
        cell.throughput_mops =
            cell.makespan_ns > 0 ? ops_total * 1e3 / cell.makespan_ns : 0.0;
        cell.wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - wall_begin)
                .count();
        cells.push_back(cell);
      }
    }
  }

  MarkParetoFront(&cells);

  if (!cli.quiet) {
    std::printf("%-24s %8s %10s %14s %12s %7s\n", "cell", "area",
                "mops", "conflict_ns", "lsq_stalls", "pareto");
    for (const Cell& c : cells) {
      std::printf("%-24s %8.2f %10.4f %14.0f %12llu %7s\n",
                  c.Name().c_str(), c.area, c.throughput_mops,
                  c.conflict_stall_ns,
                  static_cast<unsigned long long>(c.lsq_stalls),
                  c.pareto ? "*" : "");
    }
    std::size_t front = 0;
    for (const Cell& c : cells) {
      front += c.pareto ? 1 : 0;
    }
    std::printf("%zu cells, %zu on the Pareto front\n", cells.size(), front);
  }

  if (!cli.json_out.empty() &&
      !WriteFile(cli.json_out, RenderJson(cli, cells))) {
    return 1;
  }
  if (!cli.csv_out.empty() && !WriteFile(cli.csv_out, RenderCsv(cells))) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace nearpm

int main(int argc, char** argv) { return nearpm::SweepMain(argc, argv); }
