#!/usr/bin/env python3
"""Gate benchmark results against a committed baseline.

The simulator's benchmarks report deterministic model counters (simulated
nanoseconds, speedups, cost-category percentages), so any deviation from the
committed baseline is a real behavioral change, not measurement noise. CI
runs the smoke benchmarks with --json-out and fails the build when a counter
drifts more than the tolerance (default 25%) from bench/baselines/*.json.

Usage:
    check_bench.py --baseline bench/baselines/fig17_smoke.json \
                   --current fig17.json [--tolerance 0.25]

Exit code 0 when every counter is within tolerance, 1 otherwise.
"""

import argparse
import json
import sys

# google-benchmark bookkeeping fields: not model counters, never compared.
STANDARD_FIELDS = {
    "family_index",
    "per_family_instance_index",
    "repetitions",
    "repetition_index",
    "threads",
    "iterations",
    "real_time",
    "cpu_time",
}


def counters(benchmark):
    """Model counters of one benchmark entry: custom numeric fields only."""
    return {
        key: float(value)
        for key, value in benchmark.items()
        if isinstance(value, (int, float)) and key not in STANDARD_FIELDS
    }


def load_benchmarks(path):
    with open(path) as fh:
        data = json.load(fh)
    return {b["name"]: counters(b) for b in data["benchmarks"]}


def relative_drift(old, new):
    if old == new:
        return 0.0
    # Zero baselines compare absolutely: a counter appearing out of nowhere
    # is exactly the kind of change the gate exists to flag.
    return abs(new - old) / (abs(old) if old != 0 else 1.0)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--current", required=True,
                        help="freshly produced --json-out JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="maximum relative drift per counter "
                             "(default 0.25)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    failures = []
    checked = 0
    for name, base_counters in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current results")
            continue
        for key, old in sorted(base_counters.items()):
            if key not in current[name]:
                failures.append(f"{name}: counter {key} disappeared")
                continue
            new = current[name][key]
            drift = relative_drift(old, new)
            checked += 1
            marker = "FAIL" if drift > args.tolerance else "ok"
            print(f"{marker:4} {name} {key}: baseline={old:g} "
                  f"current={new:g} drift={drift:.1%}")
            if drift > args.tolerance:
                failures.append(
                    f"{name}: counter '{key}' drifted {drift:.1%} "
                    f"(baseline={old:g} actual={new:g}, "
                    f"tolerance {args.tolerance:.0%})")

    print(f"{checked} counters checked against {args.baseline}, "
          f"{len(failures)} failures")
    if failures:
        print("\nbench regression gate failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("\nIf the change is intentional, regenerate the baseline with "
              "the same benchmark command and commit it.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
