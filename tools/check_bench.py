#!/usr/bin/env python3
"""Gate benchmark results against a committed baseline.

The simulator's benchmarks report deterministic model counters (simulated
nanoseconds, speedups, cost-category percentages), so any deviation from the
committed baseline is a real behavioral change, not measurement noise. CI
runs the smoke benchmarks with --json-out and fails the build when a counter
drifts more than the tolerance (default 25%) from bench/baselines/*.json.

Usage:
    check_bench.py --baseline bench/baselines/fig17_smoke.json \
                   --current fig17.json [--tolerance 0.25]

A baseline may override the tolerance per counter with a top-level
"tolerance_overrides" object (it is bookkeeping, not a benchmark entry):

    {
      "tolerance_overrides": {
        "sweep/u4/f32:wall_ms": 1000.0,   # per benchmark+counter
        "throughput_mops": 0.0            # per counter, any benchmark
      },
      "benchmarks": [...]
    }

Lookup order: "<name>:<counter>", then "<counter>", then --tolerance.
0.0 demands bit-exact reproduction; large values admit wall-clock noise.

Exit code 0 when every counter is within tolerance, 1 otherwise.
"""

import argparse
import json
import sys

# google-benchmark bookkeeping fields: not model counters, never compared.
STANDARD_FIELDS = {
    "family_index",
    "per_family_instance_index",
    "repetitions",
    "repetition_index",
    "threads",
    "iterations",
    "real_time",
    "cpu_time",
}


def counters(benchmark):
    """Model counters of one benchmark entry: custom numeric fields only."""
    return {
        key: float(value)
        for key, value in benchmark.items()
        if isinstance(value, (int, float)) and key not in STANDARD_FIELDS
    }


def load_benchmarks(path):
    with open(path) as fh:
        data = json.load(fh)
    overrides = data.get("tolerance_overrides", {})
    return {b["name"]: counters(b) for b in data["benchmarks"]}, overrides


def tolerance_for(overrides, name, key, default):
    """Per-counter tolerance: benchmark-qualified first, bare counter next."""
    qualified = f"{name}:{key}"
    if qualified in overrides:
        return float(overrides[qualified])
    if key in overrides:
        return float(overrides[key])
    return default


def relative_drift(old, new):
    if old == new:
        return 0.0
    # Zero baselines compare absolutely: a counter appearing out of nowhere
    # is exactly the kind of change the gate exists to flag.
    return abs(new - old) / (abs(old) if old != 0 else 1.0)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--current", required=True,
                        help="freshly produced --json-out JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="maximum relative drift per counter "
                             "(default 0.25)")
    args = parser.parse_args()

    baseline, overrides = load_benchmarks(args.baseline)
    current, _ = load_benchmarks(args.current)

    failures = []
    checked = 0
    for name, base_counters in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current results")
            continue
        for key, old in sorted(base_counters.items()):
            if key not in current[name]:
                failures.append(f"{name}: counter {key} disappeared")
                continue
            new = current[name][key]
            drift = relative_drift(old, new)
            tolerance = tolerance_for(overrides, name, key, args.tolerance)
            checked += 1
            marker = "FAIL" if drift > tolerance else "ok"
            print(f"{marker:4} {name} {key}: baseline={old:g} "
                  f"current={new:g} drift={drift:.1%}")
            if drift > tolerance:
                failures.append(
                    f"{name}: counter '{key}' drifted {drift:.1%} "
                    f"(baseline={old:g} actual={new:g}, "
                    f"tolerance {tolerance:.0%})")

    print(f"{checked} counters checked against {args.baseline}, "
          f"{len(failures)} failures")
    if failures:
        print("\nbench regression gate failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("\nIf the change is intentional, regenerate the baseline with "
              "the same benchmark command and commit it.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
