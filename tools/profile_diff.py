#!/usr/bin/env python3
"""Compare two nearpm-profile-v1 JSONs and flag attribution shifts.

The profiler's output is deterministic, so CI keeps a committed baseline
profile and diffs every build against it. A shift in where request time goes
(say, conflict_stall growing from 2% to 9% of the critical path) is a real
behavioral change even when total throughput moved less than the bench
gate's tolerance.

Checked, in order:
  * both files carry schema "nearpm-profile-v1"
  * the current profile has zero attribution-invariant violations
  * per-phase attribution shares: |current - baseline| <= --share-threshold
    (absolute share points, default 0.02)
  * scalar totals (total span, slice count, event count): relative drift
    <= --tolerance (default 0.25)
  * per-resource duty cycles: |current - baseline| <= --share-threshold

Usage:
    profile_diff.py --baseline bench/baselines/fig16_profile.json \
                    --current fig16_profile.json

Exit code 0 when everything is within bounds, 1 otherwise.
"""

import argparse
import json
import sys

SCHEMA = "nearpm-profile-v1"


def load_profile(path):
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != SCHEMA:
        raise SystemExit(
            f"{path}: schema {data.get('schema')!r} is not {SCHEMA!r}")
    return data


def relative_drift(old, new):
    if old == new:
        return 0.0
    return abs(new - old) / (abs(old) if old != 0 else 1.0)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline profile JSON")
    parser.add_argument("--current", required=True,
                        help="freshly produced profile JSON")
    parser.add_argument("--share-threshold", type=float, default=0.02,
                        help="maximum absolute shift per attribution share "
                             "or duty cycle (default 0.02)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="maximum relative drift per scalar total "
                             "(default 0.25)")
    args = parser.parse_args()

    baseline = load_profile(args.baseline)
    current = load_profile(args.current)

    failures = []
    checked = 0

    violations = current["requests"]["attribution_violations"]
    if violations:
        failures.append(
            f"current profile has {violations} attribution-invariant "
            f"violation(s); phase sums must equal end-to-end spans exactly")

    base_share = baseline["requests"]["phase_share"]
    cur_share = current["requests"]["phase_share"]
    for phase in sorted(set(base_share) | set(cur_share)):
        old = base_share.get(phase, 0.0)
        new = cur_share.get(phase, 0.0)
        shift = abs(new - old)
        checked += 1
        marker = "FAIL" if shift > args.share_threshold else "ok"
        print(f"{marker:4} phase {phase}: baseline={old:.6f} "
              f"current={new:.6f} shift={shift:.6f}")
        if shift > args.share_threshold:
            failures.append(
                f"attribution share of '{phase}' shifted by {shift:.4f} "
                f"(baseline={old:.6f} actual={new:.6f}, "
                f"threshold {args.share_threshold})")

    for key in ("total_span_ns", "slices", "incomplete"):
        old = baseline["requests"][key]
        new = current["requests"][key]
        drift = relative_drift(old, new)
        checked += 1
        marker = "FAIL" if drift > args.tolerance else "ok"
        print(f"{marker:4} requests.{key}: baseline={old:g} "
              f"current={new:g} drift={drift:.1%}")
        if drift > args.tolerance:
            failures.append(
                f"requests.{key} drifted {drift:.1%} "
                f"(baseline={old:g} actual={new:g}, "
                f"tolerance {args.tolerance:.0%})")

    base_duty = {r["name"]: r["duty"] for r in baseline["resources"]}
    cur_duty = {r["name"]: r["duty"] for r in current["resources"]}
    for name in sorted(set(base_duty) | set(cur_duty)):
        if name not in cur_duty:
            failures.append(f"resource '{name}' disappeared from current")
            continue
        if name not in base_duty:
            # New resources appear when instrumentation grows; report, don't
            # fail -- the baseline refresh will pick them up.
            print(f"note resource {name}: new (duty={cur_duty[name]:.6f})")
            continue
        shift = abs(cur_duty[name] - base_duty[name])
        checked += 1
        marker = "FAIL" if shift > args.share_threshold else "ok"
        print(f"{marker:4} duty {name}: baseline={base_duty[name]:.6f} "
              f"current={cur_duty[name]:.6f} shift={shift:.6f}")
        if shift > args.share_threshold:
            failures.append(
                f"duty cycle of '{name}' shifted by {shift:.4f} "
                f"(baseline={base_duty[name]:.6f} "
                f"actual={cur_duty[name]:.6f}, "
                f"threshold {args.share_threshold})")

    print(f"{checked} profile figures checked against {args.baseline}, "
          f"{len(failures)} failures")
    if failures:
        print("\nprofile regression gate failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("\nIf the change is intentional, regenerate the baseline with "
              "tools/nearpm_prof and commit it.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
