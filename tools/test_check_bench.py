#!/usr/bin/env python3
"""Tests for the regression gates themselves (check_bench, profile_diff).

A gate that silently passes bad data is worse than no gate, so these tests
drive both scripts as subprocesses: a drifted counter must produce a nonzero
exit and a failure message naming the counter, its baseline and actual
values, and the percent drift; matching inputs must pass.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))


def bench_json(throughput, wall_ms=None, tolerance_overrides=None):
    entry = {
        "name": "fig16/btree",
        "iterations": 1,
        "real_time": 1.0,
        "cpu_time": 1.0,
        "throughput_mops": throughput,
    }
    if wall_ms is not None:
        entry["wall_ms"] = wall_ms
    payload = {"benchmarks": [entry]}
    if tolerance_overrides is not None:
        payload["tolerance_overrides"] = tolerance_overrides
    return payload


def profile_json(stall_share, exec_share, violations=0):
    shares = {
        "cmd_post": 0.10,
        "fifo_backpressure": 0.0,
        "dev_pipeline": 0.50,
        "sync_wait": 0.0,
        "conflict_stall": stall_share,
        "unit_wait": 0.0,
        "unit_exec": exec_share,
    }
    return {
        "schema": "nearpm-profile-v1",
        "config": {},
        "events": 1000,
        "epochs": 1,
        "requests": {
            "slices": 100,
            "incomplete": 0,
            "attribution_violations": violations,
            "total_span_ns": 50000,
            "phases_ns": {k: int(v * 50000) for k, v in shares.items()},
            "phase_share": shares,
        },
        "slowest": [],
        "resources": [
            {"name": "NearPM device 0 / unit 0", "pid": 16, "tid": 1,
             "spans": 100, "busy_ns": 5000, "window_ns": 50000,
             "duty": 0.10}
        ],
        "occupancy": [],
        "span_totals_ns": {},
    }


class GateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as fh:
            json.dump(payload, fh)
        return path

    def run_tool(self, script, *argv):
        return subprocess.run(
            [sys.executable, os.path.join(TOOLS_DIR, script), *argv],
            capture_output=True, text=True)

    # ---- check_bench ---------------------------------------------------------

    def test_check_bench_passes_matching_results(self):
        baseline = self.write("base.json", bench_json(4.0))
        current = self.write("cur.json", bench_json(4.2))
        result = self.run_tool("check_bench.py", "--baseline", baseline,
                               "--current", current)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_check_bench_reports_offending_counter_on_drift(self):
        baseline = self.write("base.json", bench_json(4.0))
        current = self.write("cur.json", bench_json(8.0))  # 100% drift
        result = self.run_tool("check_bench.py", "--baseline", baseline,
                               "--current", current)
        self.assertNotEqual(result.returncode, 0)
        # The failure must name the counter, both values and the drift.
        self.assertIn("counter 'throughput_mops'", result.stderr)
        self.assertIn("baseline=4", result.stderr)
        self.assertIn("actual=8", result.stderr)
        self.assertIn("100.0%", result.stderr)

    def test_check_bench_override_loosens_noisy_counter(self):
        # wall_ms drifts 10x, but the baseline marks it as unbounded noise;
        # the deterministic counter still matches, so the gate passes.
        baseline = self.write("base.json", bench_json(
            4.0, wall_ms=10.0, tolerance_overrides={"wall_ms": 1000.0}))
        current = self.write("cur.json", bench_json(4.0, wall_ms=100.0))
        result = self.run_tool("check_bench.py", "--baseline", baseline,
                               "--current", current)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_check_bench_qualified_override_wins_over_bare(self):
        overrides = {"wall_ms": 0.0, "fig16/btree:wall_ms": 1000.0}
        baseline = self.write("base.json", bench_json(
            4.0, wall_ms=10.0, tolerance_overrides=overrides))
        current = self.write("cur.json", bench_json(4.0, wall_ms=100.0))
        result = self.run_tool("check_bench.py", "--baseline", baseline,
                               "--current", current)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_check_bench_zero_override_demands_exactness(self):
        # 5% drift is inside the default 25% tolerance, but the baseline
        # pins throughput_mops to bit-exact reproduction.
        baseline = self.write("base.json", bench_json(
            4.0, tolerance_overrides={"throughput_mops": 0.0}))
        current = self.write("cur.json", bench_json(4.2))
        result = self.run_tool("check_bench.py", "--baseline", baseline,
                               "--current", current)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("counter 'throughput_mops'", result.stderr)

    # ---- profile_diff --------------------------------------------------------

    def test_profile_diff_passes_identical_profiles(self):
        baseline = self.write("base.json", profile_json(0.10, 0.30))
        current = self.write("cur.json", profile_json(0.10, 0.30))
        result = self.run_tool("profile_diff.py", "--baseline", baseline,
                               "--current", current)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_profile_diff_flags_attribution_shift(self):
        baseline = self.write("base.json", profile_json(0.10, 0.30))
        current = self.write("cur.json", profile_json(0.25, 0.15))
        result = self.run_tool("profile_diff.py", "--baseline", baseline,
                               "--current", current)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("conflict_stall", result.stderr)
        self.assertIn("shifted by", result.stderr)

    def test_profile_diff_rejects_attribution_violations(self):
        baseline = self.write("base.json", profile_json(0.10, 0.30))
        current = self.write("cur.json",
                             profile_json(0.10, 0.30, violations=3))
        result = self.run_tool("profile_diff.py", "--baseline", baseline,
                               "--current", current)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("attribution-invariant", result.stderr)


if __name__ == "__main__":
    unittest.main()
