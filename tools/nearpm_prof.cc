// nearpm_prof: sim-time profiler front end.
//
// Runs one workload configuration in the simulated platform (or reads a raw
// trace captured earlier) and folds the trace through src/prof: per-request
// critical-path attribution, per-resource duty cycles and sampled occupancy.
// Exit code is nonzero when any request slice violates the attribution
// invariant (phase sum != end-to-end span) -- CI runs this as the profiler
// smoke gate.
//
//   --workload=NAME     workload to run (default btree; see src/workloads)
//   --mechanism=NAME    logging | cow | checkpointing (default logging)
//   --mode=NAME         baseline | nearpm_sd | nearpm_md_swsync | nearpm_md
//                       (default nearpm_md)
//   --ops=N             operations after setup (default 400)
//   --threads=N         application threads (default 1)
//   --hw-config=FILE    device geometry (hwmodel schema; default calibrated)
//   --units=N           NearPM units per device (overrides the geometry;
//                       default 4 when no --hw-config is given)
//   --initial-keys=N    setup population (default 500)
//   --seed=N            workload RNG seed (default 7)
//   --trace-in=FILE     profile this raw trace instead of running anything
//   --report-out=FILE   human attribution report (default: stdout)
//   --folded-out=FILE   folded stacks for flamegraph.pl / inferno
//   --profile-out=FILE  deterministic profile JSON (nearpm-profile-v1)
//   --raw-out=FILE      raw trace JSONL (re-consumable via --trace-in)
//   --trace-out=FILE    Chrome trace-event JSON (Perfetto)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/fuzz/corpus.h"
#include "src/prof/profile.h"
#include "src/prof/raw_trace.h"
#include "src/prof/report.h"
#include "src/trace/chrome_exporter.h"
#include "src/workloads/workload.h"

namespace nearpm {
namespace {

struct CliOptions {
  std::string workload = "btree";
  std::string mechanism = "logging";
  std::string mode = "nearpm_md";
  std::uint64_t ops = 400;
  int threads = 1;
  int units = 4;  // reports the effective value after geometry resolution
  bool units_given = false;
  std::string hw_config;
  std::uint64_t initial_keys = 500;
  std::uint64_t seed = 7;
  std::string trace_in;
  std::string report_out;
  std::string folded_out;
  std::string profile_out;
  std::string raw_out;
  std::string trace_out;
};

bool ParseUint(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool MatchFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *value = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload=NAME] [--mechanism=NAME] [--mode=NAME]\n"
      "          [--ops=N] [--threads=N] [--units=N] [--hw-config=FILE]\n"
      "          [--initial-keys=N]\n"
      "          [--seed=N] [--trace-in=FILE] [--report-out=FILE]\n"
      "          [--folded-out=FILE] [--profile-out=FILE] [--raw-out=FILE]\n"
      "          [--trace-out=FILE]\n",
      argv0);
  return 2;
}

// Writes `text` to `path`, with "-" (or stdout default) meaning stdout.
bool WriteOutput(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::trunc);
  out << text;
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

std::string ConfigJson(const CliOptions& cli) {
  if (!cli.trace_in.empty()) {
    return "{\"source\": \"trace\"}";
  }
  // The hw_config key only appears when a geometry file was loaded, so the
  // default config line stays byte-identical to the committed baselines.
  const std::string hw = cli.hw_config.empty()
                             ? ""
                             : ", \"hw_config\": \"" + cli.hw_config + "\"";
  return "{\"workload\": \"" + cli.workload + "\", \"mechanism\": \"" +
         cli.mechanism + "\", \"mode\": \"" + cli.mode +
         "\", \"ops\": " + std::to_string(cli.ops) +
         ", \"threads\": " + std::to_string(cli.threads) +
         ", \"units_per_device\": " + std::to_string(cli.units) + hw +
         ", \"initial_keys\": " + std::to_string(cli.initial_keys) +
         ", \"seed\": " + std::to_string(cli.seed) + "}";
}

// Runs the configured workload with a trace attached; mirrors the bench
// harness's measurement loop (setup excluded from nothing here: the profile
// wants the whole run, setup included, since attribution is per-request).
int RunWorkloadTraced(CliOptions& cli, std::vector<TraceEvent>* events) {
  const auto mechanism = fuzz::MechanismFromName(cli.mechanism);
  if (!mechanism.ok()) {
    std::fprintf(stderr, "unknown mechanism %s\n", cli.mechanism.c_str());
    return 2;
  }
  const auto mode = fuzz::ExecModeFromName(cli.mode);
  if (!mode.ok()) {
    std::fprintf(stderr, "unknown mode %s\n", cli.mode.c_str());
    return 2;
  }
  auto workload = CreateWorkload(cli.workload);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload %s\n", cli.workload.c_str());
    return 2;
  }

  TraceRecorder recorder;
  RuntimeOptions opts;
  opts.mode = *mode;
  if (!cli.hw_config.empty()) {
    auto hw = hwmodel::LoadHwConfigFile(cli.hw_config);
    if (!hw.ok()) {
      std::fprintf(stderr, "--hw-config: %s\n", hw.status().ToString().c_str());
      return 2;
    }
    opts.hw = *hw;
  }
  if (cli.units_given || cli.hw_config.empty()) {
    opts.hw.units_per_device = cli.units;
  }
  cli.units = opts.hw.units_per_device;  // report the effective geometry
  opts.max_threads = cli.threads;
  opts.pm_size = 512ull << 20;
  opts.retain_crash_state = false;
  Runtime rt(opts);
  rt.AttachTrace(&recorder);
  PoolArena arena(0);

  WorkloadConfig wc;
  wc.mechanism = *mechanism;
  wc.threads = cli.threads;
  wc.initial_keys = cli.initial_keys;
  wc.seed = cli.seed;
  Status st = workload->Setup(rt, arena, wc);
  if (!st.ok()) {
    std::fprintf(stderr, "setup(%s) failed: %s\n", cli.workload.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  rt.DrainDevices(0);

  Rng rng(cli.seed * 31 + 1);
  for (std::uint64_t i = 0; i < cli.ops; ++i) {
    const ThreadId t = static_cast<ThreadId>(i % cli.threads);
    st = workload->RunOp(t, rng);
    if (!st.ok()) {
      std::fprintf(stderr, "op %llu failed: %s\n",
                   static_cast<unsigned long long>(i),
                   st.ToString().c_str());
      return 1;
    }
  }
  for (int t = 0; t < cli.threads; ++t) {
    rt.DrainDevices(static_cast<ThreadId>(t));
  }

  *events = recorder.Snapshot();
  return 0;
}

int ProfMain(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    std::uint64_t n = 0;
    if (MatchFlag(argv[i], "--workload", &value)) {
      cli.workload = value;
    } else if (MatchFlag(argv[i], "--mechanism", &value)) {
      cli.mechanism = value;
    } else if (MatchFlag(argv[i], "--mode", &value)) {
      cli.mode = value;
    } else if (MatchFlag(argv[i], "--ops", &value)) {
      if (!ParseUint(value, &cli.ops)) return Usage(argv[0]);
    } else if (MatchFlag(argv[i], "--threads", &value)) {
      if (!ParseUint(value, &n) || n == 0) return Usage(argv[0]);
      cli.threads = static_cast<int>(n);
    } else if (MatchFlag(argv[i], "--units", &value)) {
      if (!ParseUint(value, &n) || n == 0) return Usage(argv[0]);
      cli.units = static_cast<int>(n);
      cli.units_given = true;
    } else if (MatchFlag(argv[i], "--hw-config", &value)) {
      cli.hw_config = value;
    } else if (MatchFlag(argv[i], "--initial-keys", &value)) {
      if (!ParseUint(value, &cli.initial_keys)) return Usage(argv[0]);
    } else if (MatchFlag(argv[i], "--seed", &value)) {
      if (!ParseUint(value, &cli.seed)) return Usage(argv[0]);
    } else if (MatchFlag(argv[i], "--trace-in", &value)) {
      cli.trace_in = value;
    } else if (MatchFlag(argv[i], "--report-out", &value)) {
      cli.report_out = value;
    } else if (MatchFlag(argv[i], "--folded-out", &value)) {
      cli.folded_out = value;
    } else if (MatchFlag(argv[i], "--profile-out", &value)) {
      cli.profile_out = value;
    } else if (MatchFlag(argv[i], "--raw-out", &value)) {
      cli.raw_out = value;
    } else if (MatchFlag(argv[i], "--trace-out", &value)) {
      cli.trace_out = value;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }

  std::vector<TraceEvent> events;
  if (!cli.trace_in.empty()) {
    std::ifstream in(cli.trace_in);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", cli.trace_in.c_str());
      return 1;
    }
    std::string error;
    if (!ReadRawTrace(in, &events, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
  } else {
    const int rc = RunWorkloadTraced(cli, &events);
    if (rc != 0) {
      return rc;
    }
  }

  const Profile profile = BuildProfile(events);

  if (!WriteOutput(cli.report_out.empty() ? "-" : cli.report_out,
                   RenderReport(profile))) {
    return 1;
  }
  if (!cli.folded_out.empty() &&
      !WriteOutput(cli.folded_out, RenderFolded(profile))) {
    return 1;
  }
  if (!cli.profile_out.empty() &&
      !WriteOutput(cli.profile_out,
                   RenderProfileJson(profile, ConfigJson(cli)))) {
    return 1;
  }
  if (!cli.raw_out.empty()) {
    std::ofstream out(cli.raw_out, std::ios::trunc);
    WriteRawTrace(events, out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.raw_out.c_str());
      return 1;
    }
  }
  if (!cli.trace_out.empty()) {
    std::ofstream out(cli.trace_out, std::ios::trunc);
    WriteChromeTrace(events, out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.trace_out.c_str());
      return 1;
    }
  }

  if (profile.attribution_violations > 0) {
    std::fprintf(stderr,
                 "FAIL: %llu request slice(s) violate the attribution "
                 "invariant (phase sum != end-to-end span)\n",
                 static_cast<unsigned long long>(
                     profile.attribution_violations));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace nearpm

int main(int argc, char** argv) { return nearpm::ProfMain(argc, argv); }
