// nearpm_analyze: PM-Sanitizer front end.
//
// Runs one workload configuration in the simulated platform with the eager
// persistency-bug analyzer attached (or replays a raw trace / a crash-repro
// corpus through the same rule engine) and reports NPM001-NPM006 findings as
// human text, machine JSON, or SARIF 2.1.0. Exit code is nonzero when
// unsuppressed findings remain -- unless --expect-findings inverts the
// contract (then a *clean* run is the failure; CI uses this to prove the
// analyzer still has teeth against the enforce_ppo=false ablation).
//
//   --workload=NAME     workload to run (default btree; see src/workloads)
//   --mechanism=NAME    logging | redo | checkpointing | cow (default logging)
//   --mode=NAME         baseline | nearpm_sd | nearpm_md_swsync | nearpm_md
//                       (default nearpm_md)
//   --ops=N             operations after setup (default 200)
//   --threads=N         application threads (default 1)
//   --units=N           NearPM units per device (default 4)
//   --initial-keys=N    setup population (default 200)
//   --seed=N            workload RNG seed (default 7)
//   --enforce-ppo=0|1   disable/enable PPO ordering (default 1; 0 is the
//                       Section 2.3 ablation the analyzer must flag)
//   --trace-in=FILE     analyze a raw trace JSONL instead of running anything
//   --corpus=DIR        replay every crash repro under the rule engine
//                       (bank-kind live; serve-/repl-kind via per-machine
//                       trace snapshots)
//   --suppress=SPEC     suppression (repeatable): "NPM005" or "NPM005:file"
//   --expect-findings   exit 0 iff at least one unsuppressed finding fired
//   --sarif=FILE        write a SARIF 2.1.0 document ("-" = stdout)
//   --json-out=FILE     write the nearpm-analyze-v1 JSON report
//   --bench-json=FILE   write deterministic hook counters in google-benchmark
//                       JSON shape (tools/check_bench.py gates these)
//   --quiet             suppress the human text report on stdout
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/analyze/sanitizer.h"
#include "src/analyze/trace_analyzer.h"
#include "src/core/runtime.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/crash_fuzzer.h"
#include "src/prof/raw_trace.h"
#include "src/repl/repl_fuzzer.h"
#include "src/serve/serve_fuzzer.h"
#include "src/workloads/workload.h"

namespace nearpm {
namespace {

struct CliOptions {
  std::string workload = "btree";
  std::string mechanism = "logging";
  std::string mode = "nearpm_md";
  std::uint64_t ops = 200;
  int threads = 1;
  int units = 4;
  std::uint64_t initial_keys = 200;
  std::uint64_t seed = 7;
  bool enforce_ppo = true;
  std::string trace_in;
  std::string corpus;
  std::vector<std::string> suppressions;
  bool expect_findings = false;
  std::string sarif_out;
  std::string json_out;
  std::string bench_json;
  bool quiet = false;
};

bool ParseUint(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool MatchFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *value = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload=NAME] [--mechanism=NAME] [--mode=NAME]\n"
      "          [--ops=N] [--threads=N] [--units=N] [--initial-keys=N]\n"
      "          [--seed=N] [--enforce-ppo=0|1] [--trace-in=FILE]\n"
      "          [--corpus=DIR] [--suppress=SPEC]... [--expect-findings]\n"
      "          [--sarif=FILE] [--json-out=FILE] [--bench-json=FILE]\n"
      "          [--quiet]\n",
      argv0);
  return 2;
}

bool WriteOutput(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::trunc);
  out << text;
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

// Deterministic hook counters in the google-benchmark JSON shape that
// tools/check_bench.py consumes: any accidental hook-count explosion (a hot
// path instrumented twice, a shadow map that stops being bounded) drifts a
// counter past the gate's tolerance.
std::string BenchJson(const CliOptions& cli, const analyze::PmSanitizer& san,
                      SimTime sim_ns) {
  const analyze::PmSanitizer::Stats& s = san.stats();
  std::string name = "analyze/" + cli.workload + "_" + cli.mechanism + "_" +
                     cli.mode;
  std::string out = "{\n  \"benchmarks\": [\n    {\n";
  out += "      \"name\": \"" + name + "\",\n";
  auto counter = [&out](const char* key, std::uint64_t v, bool last = false) {
    out += "      \"";
    out += key;
    out += "\": " + std::to_string(v) + (last ? "\n" : ",\n");
  };
  counter("san_writes", s.writes);
  counter("san_reads", s.reads);
  counter("san_flushes", s.flushes);
  counter("san_fences", s.fences);
  counter("san_ndp_commands", s.ndp_commands);
  counter("san_retires", s.retires);
  counter("shadow_lines_peak", s.shadow_lines_peak);
  counter("findings", san.sink().total_unsuppressed());
  counter("sim_ns", sim_ns, /*last=*/true);
  out += "    }\n  ]\n}\n";
  return out;
}

// Runs the configured workload with the sanitizer attached. Returns 0/1/2
// like main; `sim_ns` receives the final simulated time.
int RunWorkloadAnalyzed(const CliOptions& cli, analyze::PmSanitizer* san,
                        SimTime* sim_ns) {
  const auto mechanism = fuzz::MechanismFromName(cli.mechanism);
  if (!mechanism.ok()) {
    std::fprintf(stderr, "unknown mechanism %s\n", cli.mechanism.c_str());
    return 2;
  }
  const auto mode = fuzz::ExecModeFromName(cli.mode);
  if (!mode.ok()) {
    std::fprintf(stderr, "unknown mode %s\n", cli.mode.c_str());
    return 2;
  }
  auto workload = CreateWorkload(cli.workload);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload %s\n", cli.workload.c_str());
    return 2;
  }

  RuntimeOptions opts;
  opts.mode = *mode;
  opts.hw.units_per_device = cli.units;
  opts.max_threads = cli.threads;
  opts.pm_size = 512ull << 20;
  opts.retain_crash_state = true;  // the sanitizer needs retire bookkeeping
  opts.enforce_ppo = cli.enforce_ppo;
  Runtime rt(opts);
  rt.AttachSanitizer(san);
  PoolArena arena(0);

  WorkloadConfig wc;
  wc.mechanism = *mechanism;
  wc.threads = cli.threads;
  wc.initial_keys = cli.initial_keys;
  wc.seed = cli.seed;
  Status st = workload->Setup(rt, arena, wc);
  if (!st.ok()) {
    std::fprintf(stderr, "setup(%s) failed: %s\n", cli.workload.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  rt.DrainDevices(0);

  Rng rng(cli.seed * 31 + 1);
  for (std::uint64_t i = 0; i < cli.ops; ++i) {
    const ThreadId t = static_cast<ThreadId>(i % cli.threads);
    st = workload->RunOp(t, rng);
    if (!st.ok()) {
      std::fprintf(stderr, "op %llu failed: %s\n",
                   static_cast<unsigned long long>(i), st.ToString().c_str());
      return 1;
    }
  }
  for (int t = 0; t < cli.threads; ++t) {
    rt.DrainDevices(static_cast<ThreadId>(t));
  }
  *sim_ns = rt.Now(0);
  san->Finish(*sim_ns);
  return 0;
}

// Replays every repro in the corpus through the rule engine.
//
// Bank-kind repros attach the sanitizer to the single simulated machine
// directly. Serve- and repl-kind repros run one runtime per shard/node, so
// the single-address-space sanitizer cannot span them live; instead the
// fuzzer deposits each machine's trace snapshot (trace_sink) and one fresh
// sanitizer replays each snapshot offline -- the same trace path as
// --trace-in.
//
// Policy: the replay verdict must match the recorded expectation; sound
// repros (PPO enforced, recovery/redo intact, persists intact) must be
// analyzer-clean; enforce_ppo=false repros must fire at least one finding;
// repl repros with repl_skip_redo_persist must fire NPM007 (teeth).
int RunCorpus(const CliOptions& cli) {
  const std::vector<std::string> files = fuzz::ListCorpus(cli.corpus);
  if (files.empty()) {
    std::fprintf(stderr, "no corpus files under %s\n", cli.corpus.c_str());
    return 1;
  }
  int failures = 0;
  std::size_t replayed = 0;
  for (const std::string& path : files) {
    auto repro = fuzz::LoadRepro(path);
    if (!repro.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   repro.status().ToString().c_str());
      ++failures;
      continue;
    }

    analyze::PmSanitizer san;
    for (const std::string& spec : cli.suppressions) {
      san.sink().Suppress(spec);
    }
    bool run_ok = false;
    std::string verdict_name;
    // Soundness beyond the shared enforce_ppo/break_recovery fields: the
    // kind-specific ablations that legitimately make traces hazardous.
    bool redo_persist_broken = false;
    if (repro->kind == "serve") {
      std::vector<std::vector<TraceEvent>> traces;
      serve::ServeFuzzConfig config =
          serve::ServeFuzzer::ConfigFromRepro(*repro);
      config.trace_sink = &traces;
      const serve::ServeFuzzer fuzzer(config);
      auto c = serve::ServeFuzzer::CaseFromRepro(*repro);
      if (!c.ok()) {
        std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                     c.status().ToString().c_str());
        ++failures;
        continue;
      }
      const serve::ServeCaseResult result = fuzzer.Run(*c);
      run_ok = result.ok();
      verdict_name = serve::ServeFailureKindName(result.failure);
      // One shard = one address space = one rule-engine replay; findings
      // accumulate in the shared sink.
      for (const std::vector<TraceEvent>& trace : traces) {
        analyze::AnalyzeTrace(trace, &san);
      }
    } else if (repro->kind == "repl") {
      std::vector<std::vector<TraceEvent>> traces;
      repl::ReplFuzzConfig config = repl::ReplFuzzer::ConfigFromRepro(*repro);
      config.trace_sink = &traces;
      redo_persist_broken = config.skip_redo_persist;
      const repl::ReplFuzzer fuzzer(config);
      auto c = repl::ReplFuzzer::CaseFromRepro(*repro);
      if (!c.ok()) {
        std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                     c.status().ToString().c_str());
        ++failures;
        continue;
      }
      const repl::ReplCaseResult result = fuzzer.Run(*c);
      run_ok = result.ok();
      verdict_name = repl::ReplFailureKindName(result.failure);
      for (const std::vector<TraceEvent>& trace : traces) {
        analyze::AnalyzeTrace(trace, &san);
      }
    } else {
      fuzz::FuzzConfig config = fuzz::CrashFuzzer::ConfigFromRepro(*repro);
      config.sanitizer = &san;
      const fuzz::CrashFuzzer fuzzer(config);
      const fuzz::CaseResult result =
          fuzzer.Run(fuzz::CrashFuzzer::CaseFromRepro(*repro));
      run_ok = result.ok();
      verdict_name = fuzz::FailureKindName(result.failure);
    }
    ++replayed;

    const bool expects_violation = repro->expect == "violation";
    if (run_ok == expects_violation) {
      std::fprintf(stderr, "FAIL %s: replay verdict %s does not match "
                   "expect=%s\n", path.c_str(),
                   run_ok ? "ok" : verdict_name.c_str(),
                   repro->expect.c_str());
      ++failures;
      continue;
    }

    const std::uint64_t findings = san.sink().total_unsuppressed();
    const bool sound =
        repro->enforce_ppo && !repro->break_recovery && !redo_persist_broken;
    const char* verdict = "ok";
    if (sound && findings > 0) {
      verdict = "FAIL (findings on a sound repro)";
      ++failures;
    } else if (!repro->enforce_ppo && findings == 0) {
      verdict = "FAIL (no finding on an enforce_ppo=false repro)";
      ++failures;
    } else if (redo_persist_broken &&
               san.sink().count(analyze::RuleId::kNpm007) == 0) {
      verdict = "FAIL (no NPM007 on a skip_redo_persist repro)";
      ++failures;
    }
    if (!cli.quiet || std::strcmp(verdict, "ok") != 0) {
      std::printf("%-6s %s: %llu finding(s)\n", verdict, path.c_str(),
                  static_cast<unsigned long long>(findings));
      if (findings > 0 && !cli.quiet) {
        std::fputs(san.sink().RenderText().c_str(), stdout);
      }
    }
  }
  std::printf("corpus: %zu replayed, %d failure(s)\n", replayed, failures);
  return failures == 0 ? 0 : 1;
}

int AnalyzeMain(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    std::uint64_t n = 0;
    if (MatchFlag(argv[i], "--workload", &value)) {
      cli.workload = value;
    } else if (MatchFlag(argv[i], "--mechanism", &value)) {
      cli.mechanism = value;
    } else if (MatchFlag(argv[i], "--mode", &value)) {
      cli.mode = value;
    } else if (MatchFlag(argv[i], "--ops", &value)) {
      if (!ParseUint(value, &cli.ops)) return Usage(argv[0]);
    } else if (MatchFlag(argv[i], "--threads", &value)) {
      if (!ParseUint(value, &n) || n == 0) return Usage(argv[0]);
      cli.threads = static_cast<int>(n);
    } else if (MatchFlag(argv[i], "--units", &value)) {
      if (!ParseUint(value, &n) || n == 0) return Usage(argv[0]);
      cli.units = static_cast<int>(n);
    } else if (MatchFlag(argv[i], "--initial-keys", &value)) {
      if (!ParseUint(value, &cli.initial_keys)) return Usage(argv[0]);
    } else if (MatchFlag(argv[i], "--seed", &value)) {
      if (!ParseUint(value, &cli.seed)) return Usage(argv[0]);
    } else if (MatchFlag(argv[i], "--enforce-ppo", &value)) {
      if (!ParseUint(value, &n) || n > 1) return Usage(argv[0]);
      cli.enforce_ppo = n != 0;
    } else if (MatchFlag(argv[i], "--trace-in", &value)) {
      cli.trace_in = value;
    } else if (MatchFlag(argv[i], "--corpus", &value)) {
      cli.corpus = value;
    } else if (MatchFlag(argv[i], "--suppress", &value)) {
      cli.suppressions.emplace_back(value);
    } else if (std::strcmp(argv[i], "--expect-findings") == 0) {
      cli.expect_findings = true;
    } else if (MatchFlag(argv[i], "--sarif", &value)) {
      cli.sarif_out = value;
    } else if (MatchFlag(argv[i], "--json-out", &value)) {
      cli.json_out = value;
    } else if (MatchFlag(argv[i], "--bench-json", &value)) {
      cli.bench_json = value;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      cli.quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }

  if (!cli.corpus.empty()) {
    return RunCorpus(cli);
  }

  analyze::PmSanitizer san;
  for (const std::string& spec : cli.suppressions) {
    if (!san.sink().Suppress(spec)) {
      std::fprintf(stderr, "bad suppression spec: %s\n", spec.c_str());
      return 2;
    }
  }

  SimTime sim_ns = 0;
  if (!cli.trace_in.empty()) {
    std::ifstream in(cli.trace_in);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", cli.trace_in.c_str());
      return 1;
    }
    std::vector<TraceEvent> events;
    std::string error;
    if (!ReadRawTrace(in, &events, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    for (const TraceEvent& e : events) {
      sim_ns = std::max(sim_ns, e.ts + e.dur);
    }
    const analyze::TraceAnalysisStats ts = analyze::AnalyzeTrace(events, &san);
    if (!cli.quiet) {
      std::printf("trace: %llu event(s) replayed, %llu ignored\n",
                  static_cast<unsigned long long>(ts.events),
                  static_cast<unsigned long long>(ts.ignored));
    }
  } else {
    const int rc = RunWorkloadAnalyzed(cli, &san, &sim_ns);
    if (rc != 0) {
      return rc;
    }
  }

  if (!cli.quiet) {
    std::fputs(san.sink().RenderText().c_str(), stdout);
  }
  if (!cli.sarif_out.empty() &&
      !WriteOutput(cli.sarif_out, san.sink().RenderSarif())) {
    return 1;
  }
  if (!cli.json_out.empty() &&
      !WriteOutput(cli.json_out, san.sink().RenderJson())) {
    return 1;
  }
  if (!cli.bench_json.empty() &&
      !WriteOutput(cli.bench_json, BenchJson(cli, san, sim_ns))) {
    return 1;
  }

  const std::uint64_t findings = san.sink().total_unsuppressed();
  if (cli.expect_findings) {
    if (findings == 0) {
      std::fprintf(stderr,
                   "FAIL: --expect-findings but the analyzer reported "
                   "nothing\n");
      return 1;
    }
    return 0;
  }
  return findings == 0 ? 0 : 1;
}

}  // namespace
}  // namespace nearpm

int main(int argc, char** argv) { return nearpm::AnalyzeMain(argc, argv); }
