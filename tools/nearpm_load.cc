// nearpm_load: million-op load generator for the sharded KV serving layer.
//
// Drives the threaded (Start/Stop) hot path -- lock-free shard rings, real
// OS workers -- under two canonical load models:
//
//   * closed loop: N client threads, one outstanding request each; a client
//     submits, blocks on the completion future, then immediately issues the
//     next request. Throughput is admission-limited, latency is the
//     round-trip a synchronous caller sees.
//   * open loop: requests arrive on a fixed schedule (--qps) regardless of
//     how fast the service drains. Request i's *intended* start is
//     t0 + i/qps; latency is measured from the intended start, not the
//     actual submit, so queueing delay the pacer absorbed still counts
//     (the coordinated-omission correction). A full ring counts a drop
//     instead of silently re-pacing.
//
// Keys are drawn zipfian(theta) over --keys (theta=0 is uniform; theta>1 is
// supported via an exact inverse-CDF table, not the YCSB approximation).
// The generator is seeded, so the request *stream* is reproducible; wall
// numbers are not, and the committed baseline gates only the simulated-time
// counters and exact completion counts.
//
// Exit code is nonzero when either loop makes no progress or any shard's
// trace fails the PPO audit -- load must never outrun correctness.
//
//   --mode=closed|open|both   which load models to run (default both)
//   --shards=N                serving shards (default 4)
//   --workers=N               OS worker threads per shard (default 2)
//   --queue=N                 per-shard ring capacity (default 256)
//   --batch=N                 requests per doorbell/fence (default 8)
//   --clients=N               closed-loop client threads (default 4)
//   --requests=N              requests per loop (default 100000)
//   --keys=N                  keyspace size (default 4096)
//   --table-slots=N           per-shard table capacity (default 4096)
//   --zipf=T                  zipfian theta, 0 = uniform (default 0.99)
//   --get-every=N             every Nth request is a Get (default 3)
//   --qps=N                   open-loop arrival rate (default 50000)
//   --seed=N                  key-stream seed (default 42)
//   --json-out=FILE           google-benchmark-schema JSON (check_bench gate)
//   --hist-out=FILE           wall-latency histograms, one line per bucket
//   --slo=FILE                arm the SLO watchdog with this spec (JSON,
//                             see src/obs/slo.h; configs/slo-default.json)
//   --flight-dump=FILE        where a breach dumps the flight record; the
//                             file is only created when an alert fires
//   --flight-capacity=N       flight-recorder ring slots (0 disables)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/obs/slo.h"
#include "src/serve/service.h"

namespace nearpm {
namespace serve {
namespace {

struct CliOptions {
  std::string mode = "both";
  int shards = 4;
  int workers = 2;
  std::size_t queue = 256;
  int batch = 8;
  int clients = 4;
  std::uint64_t requests = 100000;
  std::uint64_t keys = 4096;
  std::uint32_t table_slots = 4096;
  double zipf = 0.99;
  std::uint64_t get_every = 3;
  std::uint64_t qps = 50000;
  std::uint64_t seed = 42;
  std::string json_out;
  std::string hist_out;
  bool slo_enabled = false;
  obs::SloSpec slo;
  std::string flight_dump;
  std::size_t flight_capacity = obs::FlightRecorder::kDefaultCapacity;
};

// Exact zipfian(theta) sampler over [0, n): cumulative inverse-CDF table +
// binary search. Handles any theta >= 0 (including theta >= 1, where the
// usual YCSB closed form does not apply). Table build is O(n) once.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed)
      : rng_(seed), uniform_(0.0, 1.0) {
    cdf_.reserve(n);
    double total = 0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i), theta);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) {
      c /= total;
    }
  }

  std::uint64_t Next() {
    const double u = uniform_(rng_);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
  }

 private:
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_;
  std::vector<double> cdf_;
};

struct LoopResult {
  std::string name;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;   // open loop: drops at a full ring
  std::uint64_t errors = 0;     // non-OK completions (e.g. table full)
  double wall_seconds = 0;
  double wall_ops_per_sec = 0;
  std::uint64_t wall_p50_ns = 0;
  std::uint64_t wall_p99_ns = 0;
  double sim_ops_per_sec = 0;   // completed / makespan, simulated time
  std::uint64_t sim_p99_ns = 0;
  std::uint64_t ppo_violations = 0;
  Histogram wall_latency_ns;
  bool slo_armed = false;
  std::uint64_t slo_checks = 0;
  std::uint64_t slo_alerts = 0;
  std::vector<obs::SlowRequest> slo_slowest;  // from the last alert
};

StatusOr<std::unique_ptr<KvService>> MakeService(const CliOptions& cli) {
  ServeOptions so;
  so.shards = cli.shards;
  so.workers_per_shard = cli.workers;
  so.queue_capacity = cli.queue;
  so.batch_max = cli.batch;
  so.table_slots = cli.table_slots;
  so.flight_capacity = cli.flight_capacity;
  if (cli.slo_enabled) {
    so.slo_enabled = true;
    so.slo = cli.slo;
    so.slo_dump_path = cli.flight_dump;
  }
  return KvService::Create(so);
}

ServeRequest MakeRequest(std::uint64_t i, std::uint64_t key,
                         std::uint64_t get_every) {
  ServeRequest req;
  if (get_every > 0 && i % get_every == get_every - 1) {
    req.kind = RequestKind::kGet;
    req.key = key;
  } else {
    req.kind = RequestKind::kPut;
    req.key = key;
    req.value.assign(8, static_cast<std::uint8_t>(key & 0xff));
  }
  return req;
}

void FinishLoop(KvService& svc, LoopResult* out) {
  svc.Stop();
  const ServeStats stats = svc.Stats();
  out->completed = stats.completed;
  out->sim_ops_per_sec = stats.throughput_ops_per_sec;
  out->sim_p99_ns = stats.request_p99_ns;
  out->wall_ops_per_sec =
      out->wall_seconds > 0
          ? static_cast<double>(out->completed) / out->wall_seconds
          : 0;
  out->wall_p50_ns = out->wall_latency_ns.Percentile(0.5);
  out->wall_p99_ns = out->wall_latency_ns.Percentile(0.99);
  out->ppo_violations = svc.PpoViolations();
  if (const obs::SloWatchdog* wd = svc.watchdog(); wd != nullptr) {
    out->slo_armed = true;
    out->slo_checks = wd->checks();
    out->slo_alerts = wd->alert_count();
    const std::vector<obs::SloAlert> alerts = wd->alerts();
    if (!alerts.empty()) {
      out->slo_slowest = alerts.back().window.slowest;
    }
  }
}

// Closed loop: `clients` threads, one outstanding request each. Rejections
// (full ring) retry after a yield, so every generated request completes.
LoopResult RunClosed(const CliOptions& cli) {
  LoopResult result;
  result.name = "load/closed:" + std::to_string(cli.shards) + "x" +
                std::to_string(cli.clients);
  auto svc = MakeService(cli);
  if (!svc.ok()) {
    std::fprintf(stderr, "service: %s\n", svc.status().ToString().c_str());
    std::exit(2);
  }
  (*svc)->Start();

  const std::uint64_t per_client =
      cli.requests / static_cast<std::uint64_t>(cli.clients);
  std::atomic<std::uint64_t> errors{0};
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(cli.clients);
  for (int c = 0; c < cli.clients; ++c) {
    threads.emplace_back([&, c] {
      ZipfGenerator zipf(cli.keys, cli.zipf,
                         cli.seed + static_cast<std::uint64_t>(c));
      for (std::uint64_t i = 0; i < per_client; ++i) {
        const std::uint64_t key = zipf.Next();
        const auto t0 = std::chrono::steady_clock::now();
        std::future<ServeResult> done;
        while (true) {
          auto submitted =
              (*svc)->Submit(MakeRequest(i, key, cli.get_every));
          if (submitted.ok()) {
            done = std::move(*submitted);
            break;
          }
          std::this_thread::yield();  // backpressure: retry
        }
        const ServeResult res = done.get();
        const auto dt = std::chrono::steady_clock::now() - t0;
        result.wall_latency_ns.Add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count()));
        if (!res.status.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  result.errors = errors.load();
  FinishLoop(**svc, &result);
  return result;
}

// Open loop: one pacer thread submits on the arrival schedule and a
// harvester joins completions in submission order. Latency is stamped
// against the *intended* start (t0 + i/qps). Harvesting in order can charge
// a fast completion with a slow predecessor's wait (head-of-line, the wrk2
// trade-off), which only ever *overstates* latency -- safe for a gate.
LoopResult RunOpen(const CliOptions& cli) {
  LoopResult result;
  result.name = "load/open:" + std::to_string(cli.shards) + "shards";
  auto svc = MakeService(cli);
  if (!svc.ok()) {
    std::fprintf(stderr, "service: %s\n", svc.status().ToString().c_str());
    std::exit(2);
  }
  (*svc)->Start();

  struct Inflight {
    std::future<ServeResult> done;
    std::chrono::steady_clock::time_point intended;
  };
  // Bounded handoff pacer -> harvester. A plain mutex ring is fine here:
  // the contended path is the service's, not the harness's.
  std::vector<Inflight> inflight(cli.requests > 0 ? cli.requests : 1);
  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<bool> pacing_done{false};

  const auto t0 = std::chrono::steady_clock::now();
  const double ns_per_req =
      cli.qps > 0 ? 1e9 / static_cast<double>(cli.qps) : 0;

  std::thread pacer([&] {
    ZipfGenerator zipf(cli.keys, cli.zipf, cli.seed);
    for (std::uint64_t i = 0; i < cli.requests; ++i) {
      const auto intended =
          t0 + std::chrono::nanoseconds(
                   static_cast<std::uint64_t>(ns_per_req *
                                              static_cast<double>(i)));
      std::this_thread::sleep_until(intended);
      auto submitted =
          (*svc)->Submit(MakeRequest(i, zipf.Next(), cli.get_every));
      if (!submitted.ok()) {
        // Open loop: the arrival happened, the service shed it. Count the
        // drop; do not retry (that would re-couple arrivals to service
        // speed, the exact coordination the loop exists to avoid).
        rejected.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::uint64_t slot =
          produced.load(std::memory_order_relaxed);
      inflight[slot].done = std::move(*submitted);
      inflight[slot].intended = intended;
      produced.store(slot + 1, std::memory_order_release);
    }
    pacing_done.store(true, std::memory_order_release);
  });

  std::thread harvester([&] {
    std::uint64_t next = 0;
    while (true) {
      if (next < produced.load(std::memory_order_acquire)) {
        const ServeResult res = inflight[next].done.get();
        const auto dt =
            std::chrono::steady_clock::now() - inflight[next].intended;
        result.wall_latency_ns.Add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count()));
        if (!res.status.ok()) {
          ++result.errors;
        }
        ++next;
        continue;
      }
      if (pacing_done.load(std::memory_order_acquire) &&
          next >= produced.load(std::memory_order_acquire)) {
        return;
      }
      std::this_thread::yield();
    }
  });

  pacer.join();
  harvester.join();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.rejected = rejected.load();
  FinishLoop(**svc, &result);
  return result;
}

void PrintLoop(const LoopResult& r) {
  std::printf(
      "%-20s completed=%" PRIu64 " rejected=%" PRIu64 " errors=%" PRIu64
      "\n  wall: %.3fs  %.0f ops/s  p50=%" PRIu64 "ns p99=%" PRIu64
      "ns\n  sim:  %.0f ops/s  p99=%" PRIu64 "ns\n  ppo_violations=%" PRIu64
      "\n",
      r.name.c_str(), r.completed, r.rejected, r.errors, r.wall_seconds,
      r.wall_ops_per_sec, r.wall_p50_ns, r.wall_p99_ns, r.sim_ops_per_sec,
      r.sim_p99_ns, r.ppo_violations);
  if (r.slo_armed) {
    std::printf("  slo:  checks=%" PRIu64 " alerts=%" PRIu64, r.slo_checks,
                r.slo_alerts);
    if (!r.slo_slowest.empty()) {
      std::printf("  slowest=[");
      for (std::size_t i = 0; i < r.slo_slowest.size(); ++i) {
        std::printf("%s%" PRIu64 ":%" PRIu64 "ns", i > 0 ? ", " : "",
                    r.slo_slowest[i].trace, r.slo_slowest[i].latency_ns);
      }
      std::printf("]");
    }
    std::printf("\n");
  }
}

void AppendJson(std::string* out, const LoopResult& r) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "    {\n"
      "      \"name\": \"%s\",\n"
      "      \"iterations\": 1,\n"
      "      \"completed\": %" PRIu64 ",\n"
      "      \"rejected\": %" PRIu64 ",\n"
      "      \"errors\": %" PRIu64 ",\n"
      "      \"ppo_violations\": %" PRIu64 ",\n"
      "      \"sim_ops_per_sec\": %.1f,\n"
      "      \"sim_p99_ns\": %" PRIu64 ",\n"
      "      \"wall_ops_per_sec\": %.1f,\n"
      "      \"wall_p50_ns\": %" PRIu64 ",\n"
      "      \"wall_p99_ns\": %" PRIu64 "\n"
      "    }",
      r.name.c_str(), r.completed, r.rejected, r.errors, r.ppo_violations,
      r.sim_ops_per_sec, r.sim_p99_ns, r.wall_ops_per_sec, r.wall_p50_ns,
      r.wall_p99_ns);
  *out += buf;
}

void AppendHist(std::string* out, const LoopResult& r) {
  *out += "# " + r.name + " wall latency (bucket_upper_ns count)\n";
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t population = r.wall_latency_ns.bucket(i);
    if (population == 0) {
      continue;
    }
    const std::uint64_t upper = i == 0 ? 0 : (1ull << i) - 1;
    *out += std::to_string(upper) + " " + std::to_string(population) + "\n";
  }
}

bool ParseUint(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDouble(const char* text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool MatchFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *value = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--mode=closed|open|both] [--shards=N] [--workers=N]\n"
      "          [--queue=N] [--batch=N] [--clients=N] [--requests=N]\n"
      "          [--keys=N] [--table-slots=N] [--zipf=T] [--get-every=N]\n"
      "          [--qps=N] [--seed=N] [--json-out=FILE] [--hist-out=FILE]\n"
      "          [--slo=FILE] [--flight-dump=FILE] [--flight-capacity=N]\n",
      argv0);
  return 2;
}

int Run(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    std::uint64_t n = 0;
    if (MatchFlag(argv[i], "--mode", &value)) {
      cli.mode = value;
      if (cli.mode != "closed" && cli.mode != "open" && cli.mode != "both") {
        return Usage(argv[0]);
      }
    } else if (MatchFlag(argv[i], "--shards", &value) && ParseUint(value, &n)) {
      cli.shards = static_cast<int>(n);
    } else if (MatchFlag(argv[i], "--workers", &value) &&
               ParseUint(value, &n)) {
      cli.workers = static_cast<int>(n);
    } else if (MatchFlag(argv[i], "--queue", &value) && ParseUint(value, &n)) {
      cli.queue = n;
    } else if (MatchFlag(argv[i], "--batch", &value) && ParseUint(value, &n)) {
      cli.batch = static_cast<int>(n);
    } else if (MatchFlag(argv[i], "--clients", &value) &&
               ParseUint(value, &n)) {
      cli.clients = static_cast<int>(n);
    } else if (MatchFlag(argv[i], "--requests", &value) &&
               ParseUint(value, &n)) {
      cli.requests = n;
    } else if (MatchFlag(argv[i], "--keys", &value) && ParseUint(value, &n)) {
      cli.keys = n;
    } else if (MatchFlag(argv[i], "--table-slots", &value) &&
               ParseUint(value, &n)) {
      cli.table_slots = static_cast<std::uint32_t>(n);
    } else if (MatchFlag(argv[i], "--zipf", &value) &&
               ParseDouble(value, &cli.zipf)) {
    } else if (MatchFlag(argv[i], "--get-every", &value) &&
               ParseUint(value, &n)) {
      cli.get_every = n;
    } else if (MatchFlag(argv[i], "--qps", &value) && ParseUint(value, &n)) {
      cli.qps = n;
    } else if (MatchFlag(argv[i], "--seed", &value) && ParseUint(value, &n)) {
      cli.seed = n;
    } else if (MatchFlag(argv[i], "--json-out", &value)) {
      cli.json_out = value;
    } else if (MatchFlag(argv[i], "--hist-out", &value)) {
      cli.hist_out = value;
    } else if (MatchFlag(argv[i], "--slo", &value)) {
      auto spec = obs::LoadSloSpecFile(value);
      if (!spec.ok()) {
        std::fprintf(stderr, "slo: %s\n", spec.status().ToString().c_str());
        return 2;
      }
      cli.slo_enabled = true;
      cli.slo = *spec;
    } else if (MatchFlag(argv[i], "--flight-dump", &value)) {
      cli.flight_dump = value;
    } else if (MatchFlag(argv[i], "--flight-capacity", &value) &&
               ParseUint(value, &n)) {
      cli.flight_capacity = n;
    } else {
      return Usage(argv[0]);
    }
  }
  if (cli.shards < 1 || cli.workers < 1 || cli.clients < 1 ||
      cli.keys == 0 || cli.requests == 0) {
    return Usage(argv[0]);
  }

  std::vector<LoopResult> results;
  if (cli.mode == "closed" || cli.mode == "both") {
    results.push_back(RunClosed(cli));
  }
  if (cli.mode == "open" || cli.mode == "both") {
    results.push_back(RunOpen(cli));
  }

  bool healthy = true;
  for (const LoopResult& r : results) {
    PrintLoop(r);
    if (r.completed == 0 || r.wall_ops_per_sec <= 0) {
      std::fprintf(stderr, "%s: no progress\n", r.name.c_str());
      healthy = false;
    }
    if (r.ppo_violations > 0) {
      std::fprintf(stderr, "%s: %" PRIu64 " PPO violations\n",
                   r.name.c_str(), r.ppo_violations);
      healthy = false;
    }
  }

  if (!cli.json_out.empty()) {
    std::string json = "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      AppendJson(&json, results[i]);
      json += i + 1 < results.size() ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    std::ofstream out(cli.json_out);
    out << json;
  }
  if (!cli.hist_out.empty()) {
    std::string hist;
    for (const LoopResult& r : results) {
      AppendHist(&hist, r);
    }
    std::ofstream out(cli.hist_out);
    out << hist;
  }
  return healthy ? 0 : 1;
}

}  // namespace
}  // namespace serve
}  // namespace nearpm

int main(int argc, char** argv) { return nearpm::serve::Run(argc, argv); }
