// nearpm_trace: offline request-timeline viewer for flight dumps and raw
// traces.
//
// Inputs (repeatable, combined into one labeled source set):
//
//   --flight-in=FILE          a flight-record dump (the nearpm-flight-v1
//                             JSONL a breach writes, or DumpFlightRecord's
//                             output): the header names the sources, every
//                             record line rejoins the source it came from
//   --trace-in=[LABEL:]FILE   a raw trace (WriteRawTrace JSONL) as one
//                             source; LABEL defaults to the file path
//
// Actions:
//
//   (none)                    validate the inputs and print a summary --
//                             schema, per-source event counts, the embedded
//                             alert if the dump carries one
//   --list                    print every distinct request trace id,
//                             ascending, one per line
//   --request=ID              reconstruct and render request ID's
//                             cross-source timeline (hops, gaps, device
//                             slice attribution)
//   --request=slowest         same, picking the slowest request named by
//                             the dump's alert
//   --perfetto=FILE           with --request: also write the per-request
//                             Chrome/Perfetto JSON (one lane per source)
//
// Exit codes: 0 ok, 1 request/alert not found or attribution broken,
// 2 usage or malformed input. CI leans on 2: a dump that stops parsing is
// a schema regression.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/prof/raw_trace.h"
#include "src/prof/request_timeline.h"
#include "src/trace/trace_event.h"

namespace nearpm {
namespace {

bool LookupPhase(const char* name, TracePhase* out) {
  for (int i = 0; i < static_cast<int>(TracePhase::kCount); ++i) {
    const auto phase = static_cast<TracePhase>(i);
    if (std::strcmp(TracePhaseName(phase), name) == 0) {
      *out = phase;
      return true;
    }
  }
  return false;
}

// Parses the dump's header object: schema check, source labels, and the
// alert payload when one is embedded (it is the header's last field, so its
// text runs to the header's closing brace).
bool ParseFlightHeader(const std::string& line,
                       std::vector<std::string>* labels,
                       std::string* alert_json, std::string* error) {
  const std::string want_schema =
      std::string("\"schema\":\"") + obs::kFlightSchema + "\"";
  if (line.find(want_schema) == std::string::npos) {
    *error = "header does not carry schema \"" +
             std::string(obs::kFlightSchema) + "\"";
    return false;
  }
  const std::string sources_key = "\"sources\":[";
  const std::size_t pos = line.find(sources_key);
  if (pos == std::string::npos) {
    *error = "header has no sources array";
    return false;
  }
  for (std::size_t i = pos + sources_key.size();
       i < line.size() && line[i] != ']';) {
    if (line[i] != '"') {
      ++i;
      continue;
    }
    const std::size_t end = line.find('"', i + 1);
    if (end == std::string::npos) {
      *error = "unterminated source label";
      return false;
    }
    labels->push_back(line.substr(i + 1, end - i - 1));
    i = end + 1;
  }
  const std::string alert_key = "\"alert\":";
  const std::size_t apos = line.find(alert_key);
  if (apos != std::string::npos && !line.empty() && line.back() == '}') {
    const std::size_t begin = apos + alert_key.size();
    *alert_json = line.substr(begin, line.size() - 1 - begin);
  }
  return true;
}

// Parses one compacted record line (the exact format WriteRecords emits).
// Ranges and arg1 are not in the compacted form and stay zero.
bool ParseFlightRecord(const std::string& line, std::uint32_t* source,
                       TraceEvent* event) {
  char phase_name[64] = {};
  std::uint64_t ticket = 0;
  const int n = std::sscanf(
      line.c_str(),
      "{\"ticket\":%" SCNu64 ",\"source\":%" SCNu32
      ",\"phase\":\"%63[^\"]\",\"pid\":%" SCNu32 ",\"tid\":%" SCNu32
      ",\"ts\":%" SCNu64 ",\"dur\":%" SCNu64 ",\"seq\":%" SCNu64
      ",\"arg0\":%" SCNu64 ",\"epoch\":%" SCNu32 ",\"order\":%" SCNu64
      ",\"trace\":%" SCNu64 "}",
      &ticket, source, phase_name, &event->pid, &event->tid, &event->ts,
      &event->dur, &event->seq, &event->arg0, &event->epoch, &event->order,
      &event->trace);
  return n == 12 && LookupPhase(phase_name, &event->phase);
}

bool LoadFlightDump(const std::string& path,
                    std::vector<TimelineSource>* sources,
                    std::string* alert_json, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::string line;
  if (!std::getline(in, line)) {
    *error = path + ": empty file";
    return false;
  }
  std::vector<std::string> labels;
  if (!ParseFlightHeader(line, &labels, alert_json, error)) {
    *error = path + ": " + *error;
    return false;
  }
  const std::size_t base = sources->size();
  for (const std::string& label : labels) {
    sources->push_back(TimelineSource{label, {}});
  }
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::uint32_t source = 0;
    TraceEvent event;
    if (!ParseFlightRecord(line, &source, &event) ||
        source >= labels.size()) {
      *error = path + ": malformed record at line " + std::to_string(line_no);
      return false;
    }
    (*sources)[base + source].events.push_back(event);
  }
  return true;
}

bool LoadRawTrace(const std::string& spec,
                  std::vector<TimelineSource>* sources, std::string* error) {
  // LABEL:FILE when a colon precedes any '/'; otherwise the path labels
  // itself.
  std::string label = spec;
  std::string path = spec;
  const std::size_t colon = spec.find(':');
  if (colon != std::string::npos && colon > 0 &&
      spec.find('/') > colon) {
    label = spec.substr(0, colon);
    path = spec.substr(colon + 1);
  }
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::vector<TraceEvent> events;
  std::string parse_error;
  if (!ReadRawTrace(in, &events, &parse_error)) {
    *error = path + ": " + parse_error;
    return false;
  }
  sources->push_back(TimelineSource{label, std::move(events)});
  return true;
}

// The slowest request named by the alert: first entry of its "slow" array
// (WindowStats keeps it sorted, worst first).
bool SlowestFromAlert(const std::string& alert_json, std::uint64_t* out) {
  const std::size_t slow = alert_json.find("\"slow\":[");
  if (slow == std::string::npos) {
    return false;
  }
  const std::size_t trace = alert_json.find("\"trace\":", slow);
  if (trace == std::string::npos) {
    return false;
  }
  char* end = nullptr;
  const char* begin = alert_json.c_str() + trace + 8;
  const unsigned long long id = std::strtoull(begin, &end, 10);
  if (end == begin || id == 0) {
    return false;
  }
  *out = id;
  return true;
}

bool MatchFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *value = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--flight-in=FILE] [--trace-in=[LABEL:]FILE]...\n"
               "          [--list] [--request=ID|slowest] [--perfetto=FILE]\n",
               argv0);
  return 2;
}

int Run(int argc, char** argv) {
  std::string flight_in;
  std::vector<std::string> trace_ins;
  bool list = false;
  std::string request;
  std::string perfetto;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (MatchFlag(argv[i], "--flight-in", &value)) {
      flight_in = value;
    } else if (MatchFlag(argv[i], "--trace-in", &value)) {
      trace_ins.push_back(value);
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (MatchFlag(argv[i], "--request", &value)) {
      request = value;
    } else if (MatchFlag(argv[i], "--perfetto", &value)) {
      perfetto = value;
    } else {
      return Usage(argv[0]);
    }
  }
  if (flight_in.empty() && trace_ins.empty()) {
    return Usage(argv[0]);
  }

  std::vector<TimelineSource> sources;
  std::string alert_json;
  std::string error;
  if (!flight_in.empty() &&
      !LoadFlightDump(flight_in, &sources, &alert_json, &error)) {
    std::fprintf(stderr, "flight: %s\n", error.c_str());
    return 2;
  }
  for (const std::string& spec : trace_ins) {
    if (!LoadRawTrace(spec, &sources, &error)) {
      std::fprintf(stderr, "trace: %s\n", error.c_str());
      return 2;
    }
  }

  const std::vector<std::uint64_t> ids = ListTraceIds(sources);
  std::printf("sources=%zu requests=%zu\n", sources.size(), ids.size());
  for (const TimelineSource& source : sources) {
    std::printf("  %-12s %zu events\n", source.label.c_str(),
                source.events.size());
  }
  if (!alert_json.empty()) {
    std::printf("alert: %s\n", alert_json.c_str());
  }

  if (list) {
    for (const std::uint64_t id : ids) {
      std::printf("%" PRIu64 "\n", id);
    }
  }

  if (request.empty()) {
    return 0;
  }
  std::uint64_t trace_id = 0;
  if (request == "slowest") {
    if (!SlowestFromAlert(alert_json, &trace_id)) {
      std::fprintf(stderr, "no alert with a slow-request list loaded\n");
      return 1;
    }
  } else {
    char* end = nullptr;
    trace_id = std::strtoull(request.c_str(), &end, 10);
    if (end == request.c_str() || *end != '\0' || trace_id == 0) {
      return Usage(argv[0]);
    }
  }

  const RequestTimeline timeline = BuildRequestTimeline(sources, trace_id);
  if (timeline.empty()) {
    std::fprintf(stderr,
                 "request %" PRIu64 ": no events in the loaded sources\n",
                 trace_id);
    return 1;
  }
  RenderRequestTimeline(timeline, std::cout);
  if (!timeline.AttributionHolds()) {
    std::fprintf(stderr,
                 "request %" PRIu64 ": slice attribution does not tile\n",
                 trace_id);
    return 1;
  }
  if (!perfetto.empty()) {
    std::ofstream out(perfetto, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", perfetto.c_str());
      return 2;
    }
    WriteRequestTimelinePerfetto(timeline, out);
    std::printf("perfetto: wrote %s\n", perfetto.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace nearpm

int main(int argc, char** argv) { return nearpm::Run(argc, argv); }
