// Replays every minimized crash repro committed under tests/fuzz_corpus/ as
// an individual test case. Repros with expect="recoverable" are regression
// anchors (a crash state that must keep recovering cleanly); repros with
// expect="violation" are teeth anchors (states the oracle must keep
// flagging, e.g. the Section 2.3 ablation).
//
// NEARPM_FUZZ_CORPUS_DIR is injected by the build (tests/CMakeLists.txt)
// and points at the source-tree corpus directory.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analyze/sanitizer.h"
#include "src/analyze/trace_analyzer.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/crash_fuzzer.h"
#include "src/repl/repl_fuzzer.h"
#include "src/serve/serve_fuzzer.h"

namespace nearpm {
namespace fuzz {
namespace {

std::vector<std::string> CorpusFiles() {
  return ListCorpus(NEARPM_FUZZ_CORPUS_DIR);
}

TEST(FuzzCorpusTest, CorpusIsPresent) {
  EXPECT_FALSE(CorpusFiles().empty())
      << "no repro files under " << NEARPM_FUZZ_CORPUS_DIR;
}

class FuzzCorpusReplayTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzCorpusReplayTest, ReplayMatchesExpectation) {
  auto repro = LoadRepro(GetParam());
  ASSERT_TRUE(repro.ok()) << repro.status().ToString();

  bool run_ok = false;
  std::string verdict;
  if (repro->kind == "serve") {
    serve::ServeFuzzer fuzzer(serve::ServeFuzzer::ConfigFromRepro(*repro));
    auto c = serve::ServeFuzzer::CaseFromRepro(*repro);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    const serve::ServeCaseResult r = fuzzer.Run(*c);
    run_ok = r.ok();
    verdict = std::string(serve::ServeFailureKindName(r.failure)) + ": " +
              r.detail;
  } else if (repro->kind == "repl") {
    repl::ReplFuzzer fuzzer(repl::ReplFuzzer::ConfigFromRepro(*repro));
    auto c = repl::ReplFuzzer::CaseFromRepro(*repro);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    const repl::ReplCaseResult r = fuzzer.Run(*c);
    run_ok = r.ok();
    verdict = std::string(repl::ReplFailureKindName(r.failure)) + ": " +
              r.detail;
  } else {
    CrashFuzzer fuzzer(CrashFuzzer::ConfigFromRepro(*repro));
    const FuzzCase c = CrashFuzzer::CaseFromRepro(*repro);
    const CaseResult r = fuzzer.Run(c);
    run_ok = r.ok();
    verdict = std::string(FailureKindName(r.failure)) + ": " + r.detail;
  }
  if (repro->expect == "violation") {
    EXPECT_FALSE(run_ok)
        << "a once-flagged crash state passed the oracle; if the machine "
           "became stricter on purpose, refresh this repro ("
        << GetParam() << ")";
  } else {
    EXPECT_TRUE(run_ok) << verdict << " (" << GetParam() << ")";
  }
}

// The rule-engine policy nearpm_analyze --corpus enforces, applied to the
// same committed repros: serve-/repl-kind repros replay their per-machine
// trace snapshots through fresh sanitizers; sound repros must be
// analyzer-clean, and skip_redo_persist repros must fire NPM007 (the
// analyzer's teeth against the one-sided-redo ablation).
class CorpusAnalyzerPolicyTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(CorpusAnalyzerPolicyTest, TraceReplayMatchesPolicy) {
  auto repro = LoadRepro(GetParam());
  ASSERT_TRUE(repro.ok()) << repro.status().ToString();
  if (repro->kind != "serve" && repro->kind != "repl") {
    GTEST_SKIP() << "bank-kind repros attach the sanitizer live";
  }

  analyze::PmSanitizer san;
  std::vector<std::vector<TraceEvent>> traces;
  bool redo_persist_broken = false;
  if (repro->kind == "serve") {
    serve::ServeFuzzConfig config = serve::ServeFuzzer::ConfigFromRepro(*repro);
    config.trace_sink = &traces;
    auto c = serve::ServeFuzzer::CaseFromRepro(*repro);
    ASSERT_TRUE(c.ok());
    serve::ServeFuzzer(config).Run(*c);
  } else {
    repl::ReplFuzzConfig config = repl::ReplFuzzer::ConfigFromRepro(*repro);
    config.trace_sink = &traces;
    redo_persist_broken = config.skip_redo_persist;
    auto c = repl::ReplFuzzer::CaseFromRepro(*repro);
    ASSERT_TRUE(c.ok());
    repl::ReplFuzzer(config).Run(*c);
  }
  ASSERT_FALSE(traces.empty()) << "the fuzzer deposited no trace snapshots";
  for (const std::vector<TraceEvent>& trace : traces) {
    analyze::AnalyzeTrace(trace, &san);
  }

  const bool sound =
      repro->enforce_ppo && !repro->break_recovery && !redo_persist_broken;
  if (sound) {
    EXPECT_EQ(san.sink().total_unsuppressed(), 0u)
        << san.sink().RenderText();
  }
  if (!repro->enforce_ppo) {
    EXPECT_GT(san.sink().total_unsuppressed(), 0u)
        << "the rule engine missed the enforce_ppo=false ablation";
  }
  if (redo_persist_broken) {
    EXPECT_GT(san.sink().count(analyze::RuleId::kNpm007), 0u)
        << "the rule engine missed the skip_redo_persist ablation";
  }
}

std::string TestNameForPath(const std::string& path) {
  // Strip the directory and sanitize for gtest (alphanumerics only).
  std::string name = path.substr(path.find_last_of('/') + 1);
  for (char& ch : name) {
    if ((ch < 'a' || ch > 'z') && (ch < 'A' || ch > 'Z') &&
        (ch < '0' || ch > '9')) {
      ch = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, FuzzCorpusReplayTest,
                         ::testing::ValuesIn(CorpusFiles()),
                         [](const auto& corpus_info) {
                           return TestNameForPath(corpus_info.param);
                         });

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusAnalyzerPolicyTest,
                         ::testing::ValuesIn(CorpusFiles()),
                         [](const auto& corpus_info) {
                           return TestNameForPath(corpus_info.param);
                         });

}  // namespace
}  // namespace fuzz
}  // namespace nearpm
