// Replays every minimized crash repro committed under tests/fuzz_corpus/ as
// an individual test case. Repros with expect="recoverable" are regression
// anchors (a crash state that must keep recovering cleanly); repros with
// expect="violation" are teeth anchors (states the oracle must keep
// flagging, e.g. the Section 2.3 ablation).
//
// NEARPM_FUZZ_CORPUS_DIR is injected by the build (tests/CMakeLists.txt)
// and points at the source-tree corpus directory.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fuzz/corpus.h"
#include "src/fuzz/crash_fuzzer.h"
#include "src/serve/serve_fuzzer.h"

namespace nearpm {
namespace fuzz {
namespace {

std::vector<std::string> CorpusFiles() {
  return ListCorpus(NEARPM_FUZZ_CORPUS_DIR);
}

TEST(FuzzCorpusTest, CorpusIsPresent) {
  EXPECT_FALSE(CorpusFiles().empty())
      << "no repro files under " << NEARPM_FUZZ_CORPUS_DIR;
}

class FuzzCorpusReplayTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzCorpusReplayTest, ReplayMatchesExpectation) {
  auto repro = LoadRepro(GetParam());
  ASSERT_TRUE(repro.ok()) << repro.status().ToString();

  bool run_ok = false;
  std::string verdict;
  if (repro->kind == "serve") {
    serve::ServeFuzzer fuzzer(serve::ServeFuzzer::ConfigFromRepro(*repro));
    auto c = serve::ServeFuzzer::CaseFromRepro(*repro);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    const serve::ServeCaseResult r = fuzzer.Run(*c);
    run_ok = r.ok();
    verdict = std::string(serve::ServeFailureKindName(r.failure)) + ": " +
              r.detail;
  } else {
    CrashFuzzer fuzzer(CrashFuzzer::ConfigFromRepro(*repro));
    const FuzzCase c = CrashFuzzer::CaseFromRepro(*repro);
    const CaseResult r = fuzzer.Run(c);
    run_ok = r.ok();
    verdict = std::string(FailureKindName(r.failure)) + ": " + r.detail;
  }
  if (repro->expect == "violation") {
    EXPECT_FALSE(run_ok)
        << "a once-flagged crash state passed the oracle; if the machine "
           "became stricter on purpose, refresh this repro ("
        << GetParam() << ")";
  } else {
    EXPECT_TRUE(run_ok) << verdict << " (" << GetParam() << ")";
  }
}

std::string TestNameForPath(const std::string& path) {
  // Strip the directory and sanitize for gtest (alphanumerics only).
  std::string name = path.substr(path.find_last_of('/') + 1);
  for (char& ch : name) {
    if ((ch < 'a' || ch > 'z') && (ch < 'A' || ch > 'Z') &&
        (ch < '0' || ch > '9')) {
      ch = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, FuzzCorpusReplayTest,
                         ::testing::ValuesIn(CorpusFiles()),
                         [](const auto& corpus_info) {
                           return TestNameForPath(corpus_info.param);
                         });

}  // namespace
}  // namespace fuzz
}  // namespace nearpm
