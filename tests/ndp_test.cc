#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/ndp/address_map.h"
#include "src/ndp/device.h"
#include "src/ndp/inflight_table.h"
#include "src/ndp/recovery_journal.h"
#include "src/ndp/request.h"
#include "src/ndp/sync_machine.h"
#include "src/pmem/pm_space.h"

namespace nearpm {
namespace {

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i);
  }
  return out;
}

// ---- AddressMappingTable ----------------------------------------------------

TEST(AddressMapTest, TranslateWithinPool) {
  InterleaveMap il(2, 4096);
  AddressMappingTable table(&il);
  ASSERT_TRUE(table.RegisterPool(1, 0x1000, 0x1000, 1 << 20).ok());
  auto tr = table.Translate(1, 0x1000 + 5000, 16);
  ASSERT_TRUE(tr.ok());
  EXPECT_EQ(tr->global, 0x1000u + 5000u);
  EXPECT_EQ(tr->device, il.DeviceOf(0x1000 + 5000));
}

TEST(AddressMapTest, UnknownPoolFails) {
  InterleaveMap il(2, 4096);
  AddressMappingTable table(&il);
  EXPECT_EQ(table.Translate(9, 0, 8).status().code(), StatusCode::kNotFound);
}

TEST(AddressMapTest, BoundaryCheckRejectsEscape) {
  InterleaveMap il(2, 4096);
  AddressMappingTable table(&il);
  ASSERT_TRUE(table.RegisterPool(1, 0, 0, 4096).ok());
  EXPECT_TRUE(table.Translate(1, 0, 4096).ok());
  EXPECT_EQ(table.Translate(1, 0, 4097).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(table.Translate(1, 4096, 1).status().code(),
            StatusCode::kOutOfRange);
}

TEST(AddressMapTest, DuplicateRegistrationFails) {
  InterleaveMap il(1, 4096);
  AddressMappingTable table(&il);
  ASSERT_TRUE(table.RegisterPool(1, 0, 0, 4096).ok());
  EXPECT_EQ(table.RegisterPool(1, 0, 0, 4096).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(table.UnregisterPool(1).ok());
  EXPECT_EQ(table.UnregisterPool(1).code(), StatusCode::kNotFound);
}

TEST(AddressMapTest, NonIdentityVirtualBase) {
  InterleaveMap il(1, 4096);
  AddressMappingTable table(&il);
  ASSERT_TRUE(table.RegisterPool(2, 0x7f0000000000ULL, 8192, 4096).ok());
  auto tr = table.Translate(2, 0x7f0000000100ULL, 8);
  ASSERT_TRUE(tr.ok());
  EXPECT_EQ(tr->global, 8192u + 0x100u);
}

// ---- InflightTable ----------------------------------------------------------

TEST(InflightTableTest, DetectsWriteConflicts) {
  InflightTable table;
  table.Insert({1, AddrRange{0, 64}, AddrRange{100, 200}, 1000});
  // Write into the entry's write range.
  EXPECT_EQ(table.Conflicts({150, 160}, true, 0), 1000u);
  // Write into the entry's read range.
  EXPECT_EQ(table.Conflicts({0, 32}, true, 0), 1000u);
  // Read of the entry's write range.
  EXPECT_EQ(table.Conflicts({150, 160}, false, 0), 1000u);
  // Read of the entry's read range: no conflict.
  EXPECT_EQ(table.Conflicts({0, 32}, false, 0), 0u);
}

TEST(InflightTableTest, CompletedEntriesIgnored) {
  InflightTable table;
  table.Insert({1, {}, AddrRange{0, 64}, 1000});
  EXPECT_EQ(table.Conflicts({0, 64}, true, 1000), 0u);
  EXPECT_EQ(table.Conflicts({0, 64}, true, 999), 1000u);
}

TEST(InflightTableTest, CollectsConflictingSeqs) {
  InflightTable table;
  table.Insert({1, {}, AddrRange{0, 64}, 1000});
  table.Insert({2, {}, AddrRange{32, 128}, 2000});
  std::vector<std::uint64_t> seqs;
  EXPECT_EQ(table.Conflicts({0, 128}, true, 0, &seqs), 2000u);
  EXPECT_EQ(seqs.size(), 2u);
}

TEST(InflightTableTest, PruneDropsCompleted) {
  InflightTable table;
  table.Insert({1, {}, AddrRange{0, 64}, 100});
  table.Insert({2, {}, AddrRange{64, 128}, 200});
  table.Prune(150);
  EXPECT_EQ(table.size(), 1u);
}

// ---- SyncStateMachine -------------------------------------------------------

TEST(SyncMachineTest, TwoDeviceHandshake) {
  SyncStateMachine sm(2);
  EXPECT_TRUE(sm.AllComplete());
  ASSERT_TRUE(sm.ReceiveCommand().ok());
  EXPECT_EQ(sm.state(), SyncStateMachine::State::kExecuting);
  ASSERT_TRUE(sm.ReceiveLocalComplete().ok());
  EXPECT_FALSE(sm.AllComplete());  // remote still missing
  ASSERT_TRUE(sm.ReceiveRemoteComplete(0).ok());
  EXPECT_TRUE(sm.AllComplete());
}

TEST(SyncMachineTest, RemoteBeforeLocal) {
  SyncStateMachine sm(2);
  ASSERT_TRUE(sm.ReceiveCommand().ok());
  ASSERT_TRUE(sm.ReceiveRemoteComplete(0).ok());
  EXPECT_FALSE(sm.AllComplete());
  ASSERT_TRUE(sm.ReceiveLocalComplete().ok());
  EXPECT_TRUE(sm.AllComplete());
}

TEST(SyncMachineTest, ProtocolViolationsRejected) {
  SyncStateMachine sm(2);
  EXPECT_FALSE(sm.ReceiveLocalComplete().ok());  // no command yet
  ASSERT_TRUE(sm.ReceiveCommand().ok());
  EXPECT_FALSE(sm.ReceiveCommand().ok());  // still executing
  ASSERT_TRUE(sm.ReceiveLocalComplete().ok());
  EXPECT_FALSE(sm.ReceiveLocalComplete().ok());  // duplicate
  EXPECT_FALSE(sm.ReceiveRemoteComplete(5).ok());  // out of range
}

TEST(SyncMachineTest, CompletionBeforeCommandRejectedWithoutStateChange) {
  SyncStateMachine sm(3);
  // Both completion flavours arriving before any command must fail cleanly
  // and leave the machine in pristine All-Complete.
  EXPECT_FALSE(sm.ReceiveLocalComplete().ok());
  EXPECT_FALSE(sm.ReceiveRemoteComplete(0).ok());
  EXPECT_TRUE(sm.AllComplete());
  EXPECT_FALSE(sm.local_done());
  EXPECT_EQ(sm.commands_tracked(), 0u);
  // The machine is still usable: a full handshake succeeds afterwards.
  ASSERT_TRUE(sm.ReceiveCommand().ok());
  ASSERT_TRUE(sm.ReceiveLocalComplete().ok());
  ASSERT_TRUE(sm.ReceiveRemoteComplete(0).ok());
  ASSERT_TRUE(sm.ReceiveRemoteComplete(1).ok());
  EXPECT_TRUE(sm.AllComplete());
}

TEST(SyncMachineTest, DuplicateRemoteCompletionRejectedWithoutStateChange) {
  SyncStateMachine sm(3);
  ASSERT_TRUE(sm.ReceiveCommand().ok());
  ASSERT_TRUE(sm.ReceiveRemoteComplete(0).ok());
  EXPECT_EQ(sm.remotes_pending(), 1);
  // Re-delivering participant 0's completion must not double-count it or
  // complete the command early.
  EXPECT_FALSE(sm.ReceiveRemoteComplete(0).ok());
  EXPECT_EQ(sm.remotes_pending(), 1);
  EXPECT_EQ(sm.state(), SyncStateMachine::State::kExecuting);
  ASSERT_TRUE(sm.ReceiveLocalComplete().ok());
  EXPECT_FALSE(sm.AllComplete());  // remote 1 genuinely outstanding
  ASSERT_TRUE(sm.ReceiveRemoteComplete(1).ok());
  EXPECT_TRUE(sm.AllComplete());
}

TEST(SyncMachineTest, StragglerAfterAllCompleteRejected) {
  SyncStateMachine sm(2);
  ASSERT_TRUE(sm.ReceiveCommand().ok());
  ASSERT_TRUE(sm.ReceiveLocalComplete().ok());
  ASSERT_TRUE(sm.ReceiveRemoteComplete(0).ok());
  ASSERT_TRUE(sm.AllComplete());
  // A straggling duplicate arriving after the machine already returned to
  // All-Complete is an out-of-order signal, not a fresh command's completion.
  EXPECT_FALSE(sm.ReceiveRemoteComplete(0).ok());
  EXPECT_TRUE(sm.AllComplete());
  EXPECT_EQ(sm.commands_tracked(), 1u);
}

TEST(SyncMachineTest, ResetAbandonsInflightCommand) {
  SyncStateMachine sm(2);
  ASSERT_TRUE(sm.ReceiveCommand().ok());
  ASSERT_TRUE(sm.ReceiveLocalComplete().ok());
  sm.Reset();
  EXPECT_TRUE(sm.AllComplete());
  EXPECT_FALSE(sm.local_done());
  // Signals for the abandoned command are rejected...
  EXPECT_FALSE(sm.ReceiveRemoteComplete(0).ok());
  // ...and a new command starts from a clean slate.
  ASSERT_TRUE(sm.ReceiveCommand().ok());
  EXPECT_EQ(sm.remotes_pending(), 1);
  ASSERT_TRUE(sm.ReceiveLocalComplete().ok());
  ASSERT_TRUE(sm.ReceiveRemoteComplete(0).ok());
  EXPECT_TRUE(sm.AllComplete());
}

TEST(SyncMachineTest, SingleDeviceCompletesOnLocal) {
  SyncStateMachine sm(1);
  ASSERT_TRUE(sm.ReceiveCommand().ok());
  ASSERT_TRUE(sm.ReceiveLocalComplete().ok());
  EXPECT_TRUE(sm.AllComplete());
  EXPECT_EQ(sm.commands_tracked(), 1u);
}

// ---- RecoveryJournal --------------------------------------------------------

TEST(RecoveryJournalTest, ReplaySetRespectsFrontier) {
  RecoveryJournal journal;
  NearPmRequest r1{1, NearPmOp::kUndologCreate, 1, 0, 0, 64, 4096, 10};
  NearPmRequest r2{2, NearPmOp::kCommitLog, 1, 0, 4096, 64, 0, 0};
  journal.Add(r1, 0, 5000);  // before sync 1, still executing
  journal.Add(r2, 1, 9000);  // after sync 1
  const auto replay = journal.ReplaySet(1);
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(replay[0].request.seq, 1u);
  EXPECT_TRUE(journal.ReplaySet(0).empty());
}

TEST(RecoveryJournalTest, RemoveBySeqAndSync) {
  RecoveryJournal journal;
  journal.Add(NearPmRequest{1}, 0, 100);
  journal.Add(NearPmRequest{2}, 0, 200);
  journal.Add(NearPmRequest{3}, 2, 300);
  journal.Remove(2);
  EXPECT_EQ(journal.size(), 2u);
  journal.RemoveThroughSync(2);  // removes entries with after_sync < 2
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal.entries().front().request.seq, 3u);
}

TEST(RecoveryJournalTest, RemoveCompletedBefore) {
  RecoveryJournal journal;
  journal.Add(NearPmRequest{1}, 0, 100);
  journal.Add(NearPmRequest{2}, 0, 200);
  journal.Add(NearPmRequest{3}, 0, 300);
  journal.RemoveCompletedBefore(200);  // 1 and 2 left the FIFO
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal.entries().front().request.seq, 3u);
}

// ---- NearPmDevice -----------------------------------------------------------

struct DeviceFixture : public ::testing::Test {
  DeviceFixture() {
    PmSpaceOptions o;
    o.size = 1 << 20;
    o.num_devices = 1;
    space = std::make_unique<PmSpace>(o);
    device = std::make_unique<NearPmDevice>(0, &hw, space.get());
  }

  std::vector<NdpWorkItem> CopyWork(PmAddr src, PmAddr dst, std::uint64_t n) {
    NdpWorkItem item;
    item.kind = NdpWorkItem::Kind::kCopy;
    item.src = src;
    item.dst = dst;
    item.size = n;
    return {item};
  }

  hwmodel::HwConfig hw;
  const CostModel& cost = hw.cost;
  std::unique_ptr<PmSpace> space;
  std::unique_ptr<NearPmDevice> device;
};

TEST_F(DeviceFixture, ExecutesCopyFunctionally) {
  space->CpuWrite(0, Pattern(256, 3));
  space->CpuPersist(0, 256);
  auto res = device->Issue(1, 0, {0, 256}, {4096, 4096 + 256},
                           CopyWork(0, 4096, 256));
  EXPECT_GT(res.completion, res.cpu_release);
  std::vector<std::uint8_t> out(256);
  space->NdpRead(4096, out);
  EXPECT_EQ(out, Pattern(256, 3));
}

TEST_F(DeviceFixture, CpuReleaseBeforeCompletion) {
  space->CpuWrite(0, Pattern(4096, 1));
  space->CpuPersist(0, 4096);
  auto res = device->Issue(1, 0, {0, 4096}, {8192, 8192 + 4096},
                           CopyWork(0, 8192, 4096));
  // Asynchronous offload: the CPU is released after the MMIO post, long
  // before the DMA finishes.
  EXPECT_EQ(res.cpu_release, NsToTime(cost.cmd_post_ns));
  EXPECT_GT(res.completion, res.cpu_release + NsToTime(1000.0));
}

TEST_F(DeviceFixture, IndependentRequestsRunOnParallelUnits) {
  space->CpuWrite(0, Pattern(4096, 1));
  space->CpuPersist(0, 4096);
  SimTime cpu = 0;
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    auto res = device->Issue(static_cast<std::uint64_t>(i + 1), cpu,
                             {0, 1024},
                             {static_cast<PmAddr>(8192 + i * 4096),
                              static_cast<PmAddr>(8192 + i * 4096 + 1024)},
                             CopyWork(0, static_cast<PmAddr>(8192 + i * 4096),
                                      1024));
    cpu = res.cpu_release;
    completions.push_back(res.completion);
  }
  // With 4 units, the four copies overlap: the last completion is far less
  // than 4x a single copy past its issue time.
  const double one_copy = cost.NdpCopyNs(1024);
  EXPECT_LT(static_cast<double>(completions.back()),
            static_cast<double>(completions.front()) + 1.5 * one_copy);
}

TEST_F(DeviceFixture, ConflictingRequestsSerialize) {
  space->CpuWrite(0, Pattern(4096, 1));
  space->CpuPersist(0, 4096);
  auto r1 = device->Issue(1, 0, {0, 4096}, {8192, 8192 + 4096},
                          CopyWork(0, 8192, 4096));
  // Second request writes the same destination: must wait for the first.
  auto r2 = device->Issue(2, r1.cpu_release, {0, 4096}, {8192, 8192 + 4096},
                          CopyWork(0, 8192, 4096));
  EXPECT_GE(r2.completion, r1.completion + NsToTime(cost.NdpCopyNs(4096)));
  EXPECT_EQ(device->stats().dispatcher_conflict_stalls, 1u);
}

TEST_F(DeviceFixture, HostAccessBarrierStallsAndRetires) {
  space->CpuWrite(0, Pattern(4096, 1));
  space->CpuPersist(0, 4096);
  auto res = device->Issue(1, 0, {0, 4096}, {8192, 8192 + 4096},
                           CopyWork(0, 8192, 4096));
  // CPU wants to write the source the DMA is reading: stalls to completion.
  const SimTime when =
      device->HostAccessBarrier({0, 64}, true, res.cpu_release);
  EXPECT_EQ(when, res.completion);
  EXPECT_EQ(device->stats().host_access_stalls, 1u);
  // And the request is now retired: durable at any later crash.
  Rng rng(1);
  const CrashReport report = space->Crash(rng, 0);
  EXPECT_EQ(report.requests_dropped, 0u);
  EXPECT_EQ(report.requests_truncated, 0u);
  std::vector<std::uint8_t> out(64);
  space->CpuRead(8192, out);
  EXPECT_EQ(out, Pattern(64, 1));
}

TEST_F(DeviceFixture, HostAccessWithoutConflictDoesNotStall) {
  auto res = device->Issue(1, 0, {0, 64}, {4096, 4160}, CopyWork(0, 4096, 64));
  const SimTime when =
      device->HostAccessBarrier({64, 128}, true, res.cpu_release);
  EXPECT_EQ(when, res.cpu_release);
  EXPECT_EQ(device->stats().host_access_stalls, 0u);
}

TEST_F(DeviceFixture, FifoBackpressureStallsCpu) {
  space->CpuWrite(0, Pattern(4096, 1));
  space->CpuPersist(0, 4096);
  // Saturate: many large copies to distinct destinations with 4 units and a
  // 32-entry FIFO. The arrival rate (one post per ~100 ns) exceeds the
  // service rate (4 units / ~1 us per 4 kB copy), so the FIFO fills and
  // posting must eventually stall the CPU.
  SimTime cpu = 0;
  for (int i = 0; i < 128; ++i) {
    auto res =
        device->Issue(static_cast<std::uint64_t>(i + 1), cpu, {0, 4096},
                      {static_cast<PmAddr>(65536 + i * 4096),
                       static_cast<PmAddr>(65536 + i * 4096 + 4096)},
                      CopyWork(0, static_cast<PmAddr>(65536 + i * 4096), 4096));
    cpu = res.cpu_release;
  }
  EXPECT_GT(device->stats().fifo_backpressure_stalls, 0u);
}

TEST_F(DeviceFixture, WorkNsAccountsItems) {
  std::vector<NdpWorkItem> work = CopyWork(0, 4096, 1024);
  NdpWorkItem lit;
  lit.kind = NdpWorkItem::Kind::kLiteral;
  lit.dst = 8192;
  lit.literal.assign(64, 0);
  work.push_back(lit);
  const double ns = NdpWorkNs(cost, work);
  EXPECT_DOUBLE_EQ(
      ns, cost.ndp_setup_ns + 1024 * cost.ndp_dma_ns_per_byte +
              cost.ndp_metadata_ns);
}

TEST_F(DeviceFixture, ResetClearsState) {
  device->Issue(1, 0, {0, 64}, {4096, 4160}, CopyWork(0, 4096, 64));
  device->Reset();
  EXPECT_EQ(device->last_completion(), 0u);
  EXPECT_EQ(device->stats().requests, 0u);
}

}  // namespace
}  // namespace nearpm
