#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/core/runtime.h"

namespace nearpm {
namespace {

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i);
  }
  return out;
}

RuntimeOptions Opts(ExecMode mode) {
  RuntimeOptions o;
  o.mode = mode;
  o.pm_size = 16ull << 20;
  return o;
}

// Lays out a little arena by hand: data at 0, log slots at 1 MB.
struct RtFixture {
  explicit RtFixture(ExecMode mode) : rt(Opts(mode)) {
    auto p = rt.RegisterPool(0, 8ull << 20);
    EXPECT_TRUE(p.ok());
    pool = *p;
  }
  PmAddr slot(int i) const {
    return (1ull << 20) + static_cast<PmAddr>(i) * kSlotSize;
  }
  Runtime rt;
  PoolId pool = 0;
};

TEST(RuntimeTest, PoolRegistrationBounds) {
  Runtime rt(Opts(ExecMode::kCpuBaseline));
  EXPECT_TRUE(rt.RegisterPool(0, 1 << 20).ok());
  EXPECT_FALSE(rt.RegisterPool(0, 1ull << 40).ok());
}

TEST(RuntimeTest, WriteReadRoundTrip) {
  RtFixture f(ExecMode::kNdpMultiDelayed);
  const auto data = Pattern(100, 7);
  f.rt.Write(0, 500, data);
  std::vector<std::uint8_t> out(100);
  f.rt.Read(0, 500, out);
  EXPECT_EQ(out, data);
  EXPECT_GT(f.rt.Now(0), 0u);
}

TEST(RuntimeTest, LoadStoreTyped) {
  RtFixture f(ExecMode::kCpuBaseline);
  f.rt.Store<std::uint64_t>(0, 128, 0xdeadbeef);
  EXPECT_EQ(f.rt.Load<std::uint64_t>(0, 128), 0xdeadbeefu);
}

TEST(RuntimeTest, ComputeAdvancesClock) {
  RtFixture f(ExecMode::kCpuBaseline);
  const SimTime before = f.rt.Now(0);
  f.rt.Compute(0, 1234.0);
  EXPECT_EQ(f.rt.Now(0), before + 1234);
}

TEST(RuntimeTest, ThreadClocksIndependent) {
  RtFixture f(ExecMode::kCpuBaseline);
  f.rt.Compute(0, 100.0);
  f.rt.Compute(1, 700.0);
  EXPECT_EQ(f.rt.Now(0), 100u);
  EXPECT_EQ(f.rt.Now(1), 700u);
  EXPECT_EQ(f.rt.stats().MaxThreadTime(), 700u);
}

// ---- Primitives: functional behaviour across modes --------------------------

class PrimitiveModeTest : public ::testing::TestWithParam<ExecMode> {};

TEST_P(PrimitiveModeTest, UndologCreateWritesSlot) {
  RtFixture f(GetParam());
  f.rt.Write(0, 0, Pattern(256, 9));
  f.rt.Persist(0, 0, 256);
  ASSERT_TRUE(f.rt.UndologCreate(f.pool, 0, 42, 0, 256, f.slot(0)).ok());
  f.rt.DrainDevices(0);

  const SlotHeader header = f.rt.Load<SlotHeader>(0, f.slot(0));
  EXPECT_EQ(header.magic, kUndoMagic);
  EXPECT_EQ(header.tag, 42u);
  EXPECT_EQ(header.target, 0u);
  EXPECT_EQ(header.size, 256u);
  std::vector<std::uint8_t> payload(256);
  f.rt.Read(0, CcArea::SlotData(f.slot(0)), payload);
  EXPECT_EQ(payload, Pattern(256, 9));
  EXPECT_EQ(Checksum64(payload), header.checksum);
}

TEST_P(PrimitiveModeTest, ApplyLogCopiesToTarget) {
  RtFixture f(GetParam());
  f.rt.Write(0, CcArea::SlotData(f.slot(1)), Pattern(128, 3));
  f.rt.Persist(0, CcArea::SlotData(f.slot(1)), 128);
  ASSERT_TRUE(f.rt.ApplyLog(f.pool, 0, f.slot(1), 128, 2048).ok());
  f.rt.DrainDevices(0);
  std::vector<std::uint8_t> out(128);
  f.rt.Read(0, 2048, out);
  EXPECT_EQ(out, Pattern(128, 3));
}

TEST_P(PrimitiveModeTest, CommitLogInvalidatesSlots) {
  RtFixture f(GetParam());
  f.rt.Write(0, 0, Pattern(64, 1));
  f.rt.Persist(0, 0, 64);
  ASSERT_TRUE(f.rt.UndologCreate(f.pool, 0, 1, 0, 64, f.slot(0)).ok());
  ASSERT_TRUE(f.rt.UndologCreate(f.pool, 0, 1, 0, 64, f.slot(1)).ok());
  const PmAddr slots[] = {f.slot(0), f.slot(1)};
  ASSERT_TRUE(f.rt.CommitLog(f.pool, 0, slots).ok());
  f.rt.DrainDevices(0);
  EXPECT_EQ(f.rt.Load<SlotHeader>(0, f.slot(0)).magic, 0u);
  EXPECT_EQ(f.rt.Load<SlotHeader>(0, f.slot(1)).magic, 0u);
}

TEST_P(PrimitiveModeTest, CkpointCreateSnapshotsPage) {
  RtFixture f(GetParam());
  f.rt.Write(0, 8192, Pattern(4096, 5));
  f.rt.Persist(0, 8192, 4096);
  ASSERT_TRUE(f.rt.CkpointCreate(f.pool, 0, 3, 8192, 4096, f.slot(2)).ok());
  f.rt.DrainDevices(0);
  const SlotHeader header = f.rt.Load<SlotHeader>(0, f.slot(2));
  EXPECT_EQ(header.magic, kCkptMagic);
  EXPECT_EQ(header.tag, 3u);
  std::vector<std::uint8_t> payload(4096);
  f.rt.Read(0, CcArea::SlotData(f.slot(2)), payload);
  EXPECT_EQ(payload, Pattern(4096, 5));
}

TEST_P(PrimitiveModeTest, ShadowCpyDuplicatesPage) {
  RtFixture f(GetParam());
  f.rt.Write(0, 4096, Pattern(4096, 8));
  f.rt.Persist(0, 4096, 4096);
  ASSERT_TRUE(f.rt.ShadowCpy(f.pool, 0, 4096, 12288, 4096).ok());
  f.rt.DrainDevices(0);
  std::vector<std::uint8_t> out(4096);
  f.rt.Read(0, 12288, out);
  EXPECT_EQ(out, Pattern(4096, 8));
}

TEST_P(PrimitiveModeTest, RawCopySynchronous) {
  RtFixture f(GetParam());
  f.rt.Write(0, 0, Pattern(512, 2));
  f.rt.Persist(0, 0, 512);
  ASSERT_TRUE(f.rt.RawCopy(f.pool, 0, 0, 2048, 512, /*wait=*/true).ok());
  std::vector<std::uint8_t> out(512);
  f.rt.Read(0, 2048, out);
  EXPECT_EQ(out, Pattern(512, 2));
}

TEST_P(PrimitiveModeTest, PoolBoundsEnforced) {
  RtFixture f(GetParam());
  EXPECT_FALSE(f.rt.UndologCreate(f.pool, 0, 1, 9ull << 20, 64, f.slot(0)).ok());
  EXPECT_FALSE(f.rt.RawCopy(f.pool + 7, 0, 0, 64, 64, true).ok());
  EXPECT_FALSE(f.rt.UndologCreate(f.pool, 0, 1, 0, 0, f.slot(0)).ok());
  EXPECT_FALSE(
      f.rt.UndologCreate(f.pool, 0, 1, 0, kMaxLogData + 1, f.slot(0)).ok());
}

INSTANTIATE_TEST_SUITE_P(AllModes, PrimitiveModeTest,
                         ::testing::Values(ExecMode::kCpuBaseline,
                                           ExecMode::kNdpSingleDevice,
                                           ExecMode::kNdpMultiSwSync,
                                           ExecMode::kNdpMultiDelayed),
                         [](const auto& info) {
                           return ExecModeName(info.param);
                         });

// ---- PPO ordering (Invariant 1/2) -------------------------------------------

TEST(RuntimeOrderingTest, StoreAndPersistDoNotStall) {
  RtFixture f(ExecMode::kNdpSingleDevice);
  f.rt.Write(0, 0, Pattern(4096, 1));
  f.rt.Persist(0, 0, 4096);
  ASSERT_TRUE(f.rt.UndologCreate(f.pool, 0, 1, 0, 4096, f.slot(0)).ok());
  // In-place update of the logged data: the store lands in the cache and
  // proceeds (PPO's relaxation)...
  f.rt.Write(0, 0, Pattern(64, 2));
  EXPECT_EQ(f.rt.device(0).stats().host_access_stalls, 0u);
  // ...and its write-back is *accepted* into the persistent host queue
  // without stalling; the conflicting log copy becomes crash-durable.
  const SimTime before = f.rt.Now(0);
  f.rt.Persist(0, 0, 64);
  EXPECT_LT(f.rt.Now(0), before + NsToTime(f.rt.options().hw.cost.NdpCopyNs(4096)));
  EXPECT_GT(f.rt.device(0).stats().host_buffered_writebacks, 0u);
  // Crash: both the buffered update and the log must be durable.
  Rng rng(1);
  const CrashReport report = f.rt.InjectCrash(rng);
  EXPECT_EQ(report.requests_dropped, 0u);
  EXPECT_EQ(f.rt.Load<SlotHeader>(0, f.slot(0)).magic, kUndoMagic);
}

TEST(RuntimeOrderingTest, LoadStallsBehindConflictingNdpWrite) {
  RtFixture f(ExecMode::kNdpSingleDevice);
  // Apply a redo log near memory, then immediately read the target: the
  // load must wait for the in-flight copy.
  f.rt.Write(0, CcArea::SlotData(f.slot(0)), Pattern(4096, 3));
  f.rt.Persist(0, CcArea::SlotData(f.slot(0)), 4096);
  ASSERT_TRUE(f.rt.ApplyLog(f.pool, 0, f.slot(0), 4096, 131072).ok());
  const SimTime before = f.rt.Now(0);
  std::vector<std::uint8_t> out(64);
  f.rt.Read(0, 131072, out);
  EXPECT_GT(f.rt.Now(0), before + NsToTime(500.0));
  EXPECT_GT(f.rt.device(0).stats().host_access_stalls, 0u);
  EXPECT_EQ(out, Pattern(64, 3));
}

TEST(RuntimeOrderingTest, AblationSkipsOrdering) {
  RuntimeOptions o = Opts(ExecMode::kNdpSingleDevice);
  o.enforce_ppo = false;
  Runtime rt(o);
  auto pool = rt.RegisterPool(0, 8ull << 20);
  rt.Write(0, 0, Pattern(4096, 1));
  rt.Persist(0, 0, 4096);
  ASSERT_TRUE(rt.UndologCreate(*pool, 0, 1, 0, 4096, 1ull << 20).ok());
  rt.Write(0, 0, Pattern(64, 2));
  rt.Persist(0, 0, 64);  // naive hardware: no ordering established
  EXPECT_EQ(rt.device(0).stats().host_access_stalls, 0u);
  EXPECT_EQ(rt.device(0).stats().host_buffered_writebacks, 0u);
}

// ---- Mode performance shapes -------------------------------------------------

double RegionTimeFor(ExecMode mode) {
  RtFixture f(mode);
  // Steady-state pattern: four independent 1 kB log creates then a commit,
  // repeated. The CPU-side region time is what Figure 15 measures.
  f.rt.Write(0, 0, Pattern(16384, 1));
  f.rt.Persist(0, 0, 16384);
  for (int rep = 0; rep < 20; ++rep) {
    f.rt.BeginCc(0);
    std::vector<PmAddr> slots;
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(f.rt
                      .UndologCreate(f.pool, 0, rep + 1,
                                     static_cast<PmAddr>(i) * 4096, 1024,
                                     f.slot(i))
                      .ok());
      slots.push_back(f.slot(i));
    }
    EXPECT_TRUE(f.rt.CommitLog(f.pool, 0, slots).ok());
    f.rt.EndCc(0);
    f.rt.Compute(0, 5000.0);  // app work between transactions
  }
  f.rt.DrainDevices(0);
  return f.rt.stats().CcRegionNs();
}

TEST(RuntimeModeShapeTest, NdpReducesCcRegionTime) {
  const double baseline = RegionTimeFor(ExecMode::kCpuBaseline);
  const double sd = RegionTimeFor(ExecMode::kNdpSingleDevice);
  const double md_sw = RegionTimeFor(ExecMode::kNdpMultiSwSync);
  const double md = RegionTimeFor(ExecMode::kNdpMultiDelayed);
  // All NDP modes beat the CPU baseline in the crash-consistency region.
  EXPECT_GT(baseline / sd, 2.0);
  EXPECT_GT(baseline / md_sw, 1.5);
  EXPECT_GT(baseline / md, 2.0);
  // Delayed sync beats CPU-polling software sync (the Figure 16 ordering).
  EXPECT_GT(md_sw / md, 1.05);
}

TEST(RuntimeModeShapeTest, OverlapOnlyWithNdp) {
  RtFixture base(ExecMode::kCpuBaseline);
  EXPECT_EQ(base.rt.stats().OverlapNs(), 0.0);

  RtFixture f(ExecMode::kNdpMultiDelayed);
  f.rt.Write(0, 0, Pattern(4096, 1));
  f.rt.Persist(0, 0, 4096);
  ASSERT_TRUE(f.rt.UndologCreate(f.pool, 0, 1, 0, 4096, f.slot(0)).ok());
  f.rt.Compute(0, 10000.0);
  EXPECT_GT(f.rt.stats().OverlapNs(), 0.0);
}

// ---- Crash and hardware recovery ---------------------------------------------

TEST(RuntimeCrashTest, InFlightRequestLostWithoutSync) {
  RtFixture f(ExecMode::kNdpSingleDevice);
  f.rt.Write(0, 0, Pattern(4096, 1));
  f.rt.Persist(0, 0, 4096);
  ASSERT_TRUE(f.rt.UndologCreate(f.pool, 0, 1, 0, 4096, f.slot(0)).ok());
  // Crash immediately: the copy is still in flight on the device.
  Rng rng(1);
  const CrashReport report = f.rt.InjectCrash(rng);
  EXPECT_GT(report.requests_dropped + report.requests_truncated, 0u);
}

TEST(RuntimeCrashTest, ObservedRequestSurvivesCrash) {
  RtFixture f(ExecMode::kNdpSingleDevice);
  f.rt.Write(0, 0, Pattern(256, 1));
  f.rt.Persist(0, 0, 256);
  ASSERT_TRUE(f.rt.UndologCreate(f.pool, 0, 1, 0, 256, f.slot(0)).ok());
  // The in-place update stalls behind the log copy; afterwards the log is
  // architecturally durable.
  f.rt.Write(0, 0, Pattern(256, 2));
  f.rt.Persist(0, 0, 256);
  Rng rng(1);
  f.rt.InjectCrash(rng);
  const SlotHeader header = f.rt.Load<SlotHeader>(0, f.slot(0));
  EXPECT_EQ(header.magic, kUndoMagic);
  std::vector<std::uint8_t> payload(256);
  f.rt.Read(0, CcArea::SlotData(f.slot(0)), payload);
  EXPECT_EQ(payload, Pattern(256, 1));  // the pre-update data
  // And the in-place update persisted.
  std::vector<std::uint8_t> data(256);
  f.rt.Read(0, 0, data);
  EXPECT_EQ(data, Pattern(256, 2));
}

TEST(RuntimeCrashTest, DrainedStateFullyDurable) {
  RtFixture f(ExecMode::kNdpMultiDelayed);
  f.rt.Write(0, 0, Pattern(4096, 1));
  f.rt.Persist(0, 0, 4096);
  ASSERT_TRUE(f.rt.UndologCreate(f.pool, 0, 1, 0, 4096, f.slot(0)).ok());
  f.rt.DrainDevices(0);
  Rng rng(1);
  const CrashReport report = f.rt.InjectCrash(rng);
  EXPECT_EQ(report.requests_dropped, 0u);
  EXPECT_EQ(report.requests_truncated, 0u);
  EXPECT_EQ(f.rt.Load<SlotHeader>(0, f.slot(0)).magic, kUndoMagic);
}

TEST(RuntimeCrashTest, ClockResetsAfterCrash) {
  RtFixture f(ExecMode::kNdpMultiDelayed);
  f.rt.Compute(0, 5000.0);
  Rng rng(1);
  f.rt.InjectCrash(rng);
  EXPECT_EQ(f.rt.Now(0), 0u);
}

// ---- Multi-device duplication -------------------------------------------------

TEST(RuntimeMultiDeviceTest, SpanningCopyDuplicatesCommand) {
  RtFixture f(ExecMode::kNdpMultiDelayed);
  // A 8 kB object starting at page 0 spans both interleaved devices.
  f.rt.Write(0, 0, Pattern(8192, 1));
  f.rt.Persist(0, 0, 8192);
  ASSERT_TRUE(f.rt.RawCopy(f.pool, 0, 0, 16384, 8192, true).ok());
  EXPECT_GE(f.rt.counters().duplicated_commands, 1u);
  std::vector<std::uint8_t> out(8192);
  f.rt.Read(0, 16384, out);
  EXPECT_EQ(out, Pattern(8192, 1));
}

TEST(RuntimeMultiDeviceTest, DelayedSyncCountsAndSwSyncPolls) {
  RtFixture delayed(ExecMode::kNdpMultiDelayed);
  delayed.rt.Write(0, 0, Pattern(64, 1));
  delayed.rt.Persist(0, 0, 64);
  ASSERT_TRUE(delayed.rt.UndologCreate(delayed.pool, 0, 1, 0, 64,
                                       delayed.slot(0)).ok());
  const PmAddr slots[] = {delayed.slot(0)};
  ASSERT_TRUE(delayed.rt.CommitLog(delayed.pool, 0, slots).ok());
  EXPECT_EQ(delayed.rt.counters().delayed_syncs, 1u);
  EXPECT_EQ(delayed.rt.counters().sw_sync_polls, 0u);

  RtFixture sw(ExecMode::kNdpMultiSwSync);
  sw.rt.Write(0, 0, Pattern(64, 1));
  sw.rt.Persist(0, 0, 64);
  ASSERT_TRUE(sw.rt.UndologCreate(sw.pool, 0, 1, 0, 64, sw.slot(0)).ok());
  const PmAddr sw_slots[] = {sw.slot(0)};
  ASSERT_TRUE(sw.rt.CommitLog(sw.pool, 0, sw_slots).ok());
  EXPECT_EQ(sw.rt.counters().sw_sync_polls, 1u);
  EXPECT_EQ(sw.rt.counters().delayed_syncs, 0u);
}

}  // namespace
}  // namespace nearpm
