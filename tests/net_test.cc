// Tests for src/net: link serialization and queueing, propagation latency,
// per-kind counters, trace/metrics observability, and reset semantics.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/net/fabric.h"
#include "src/trace/recorder.h"

namespace nearpm {
namespace net {
namespace {

Fabric MakeFabric(int nodes, TraceRecorder* trace = nullptr) {
  FabricOptions fo;
  fo.nodes = nodes;
  fo.trace = trace;
  return Fabric(fo);
}

TEST(FabricTest, DeliveryPaysSerializationAndLatency) {
  Fabric fabric = MakeFabric(2);
  const Delivery d = fabric.Send(0, 1, 256, /*earliest=*/1000,
                                 MsgKind::kIntentShip);
  EXPECT_EQ(d.link, fabric.LinkIndex(0, 1));
  EXPECT_EQ(d.sent, 1000u) << "idle link starts serializing immediately";
  const SimTime serialize =
      NsToTime(fabric.cost().NetSerializeNs(256));
  const SimTime latency = NsToTime(fabric.cost().net_link_latency_ns);
  EXPECT_EQ(d.delivered, 1000 + serialize + latency);
}

TEST(FabricTest, MessagesQueueOnTheSameLink) {
  Fabric fabric = MakeFabric(2);
  const Delivery first = fabric.Send(0, 1, 4096, 0, MsgKind::kIntentShip);
  const Delivery second = fabric.Send(0, 1, 64, 0, MsgKind::kIntentAck);
  const SimTime latency = NsToTime(fabric.cost().net_link_latency_ns);
  // The second frame cannot start serializing before the first finished.
  EXPECT_GE(second.sent, first.delivered - latency);
  EXPECT_GT(second.delivered, first.delivered);
}

TEST(FabricTest, DistinctLinksDoNotQueue) {
  Fabric fabric = MakeFabric(3);
  const Delivery a = fabric.Send(0, 1, 4096, 0, MsgKind::kIntentShip);
  const Delivery b = fabric.Send(0, 2, 4096, 0, MsgKind::kIntentShip);
  const Delivery c = fabric.Send(2, 1, 4096, 0, MsgKind::kIntentShip);
  EXPECT_EQ(a.sent, 0u);
  EXPECT_EQ(b.sent, 0u) << "0->1 and 0->2 are separate directed links";
  EXPECT_EQ(c.sent, 0u) << "2->1 is independent of 0->1";
  EXPECT_NE(a.link, b.link);
  EXPECT_NE(a.link, c.link);
}

TEST(FabricTest, LinkFreeAtTracksOccupancy) {
  Fabric fabric = MakeFabric(2);
  EXPECT_EQ(fabric.LinkFreeAt(0, 1), 0u);
  const Delivery d = fabric.Send(0, 1, 1024, 500, MsgKind::kRedoWrite);
  const SimTime latency = NsToTime(fabric.cost().net_link_latency_ns);
  EXPECT_EQ(fabric.LinkFreeAt(0, 1), d.delivered - latency);
  EXPECT_EQ(fabric.LinkFreeAt(1, 0), 0u) << "reverse link stays free";
}

TEST(FabricTest, CountsMessagesAndBytesPerKind) {
  Fabric fabric = MakeFabric(2);
  fabric.Send(0, 1, 100, 0, MsgKind::kIntentShip);
  fabric.Send(0, 1, 200, 0, MsgKind::kIntentShip);
  fabric.Send(1, 0, 32, 0, MsgKind::kIntentAck);
  EXPECT_EQ(fabric.MessagesSent(MsgKind::kIntentShip), 2u);
  EXPECT_EQ(fabric.BytesSent(MsgKind::kIntentShip), 300u);
  EXPECT_EQ(fabric.MessagesSent(MsgKind::kIntentAck), 1u);
  EXPECT_EQ(fabric.MessagesSent(MsgKind::kDoorbell), 0u);
  EXPECT_EQ(fabric.total_messages(), 3u);
}

TEST(FabricTest, EmitsTraceEventsAndMetrics) {
  TraceRecorder recorder;
  Fabric fabric = MakeFabric(2, &recorder);
  const Delivery d = fabric.Send(0, 1, 128, 0, MsgKind::kDoorbell, /*seq=*/7);

  bool saw_xfer = false;
  bool saw_deliver = false;
  for (const TraceEvent& e : recorder.Snapshot()) {
    if (e.phase == TracePhase::kNetXfer) {
      saw_xfer = true;
      EXPECT_EQ(e.pid, kTraceNetPid);
      EXPECT_EQ(e.tid, static_cast<std::uint32_t>(d.link));
      EXPECT_EQ(e.seq, 7u);
      EXPECT_EQ(e.arg1, 128u);
    }
    if (e.phase == TracePhase::kNetDeliver) {
      saw_deliver = true;
      EXPECT_EQ(e.pid, kTraceReplPid);
      EXPECT_EQ(e.tid, 1u) << "delivery lands on the destination's track";
      EXPECT_EQ(e.ts, d.delivered);
    }
  }
  EXPECT_TRUE(saw_xfer);
  EXPECT_TRUE(saw_deliver);

  const auto& counters = recorder.metrics().counters();
  ASSERT_TRUE(counters.contains("net_msgs_doorbell"));
  EXPECT_EQ(counters.at("net_msgs_doorbell").load(), 1u);
  ASSERT_TRUE(counters.contains("net_bytes_doorbell"));
  EXPECT_EQ(counters.at("net_bytes_doorbell").load(), 128u);
}

TEST(FabricTest, ResetForgetsLinkOccupancy) {
  Fabric fabric = MakeFabric(2);
  fabric.Send(0, 1, 1 << 20, 0, MsgKind::kIntentShip);
  ASSERT_GT(fabric.LinkFreeAt(0, 1), 0u);
  fabric.Reset();
  EXPECT_EQ(fabric.LinkFreeAt(0, 1), 0u);
  const Delivery d = fabric.Send(0, 1, 64, 0, MsgKind::kIntentShip);
  EXPECT_EQ(d.sent, 0u) << "a fresh epoch starts from an idle link";
}

TEST(FabricTest, MsgKindNamesAreStable) {
  EXPECT_STREQ(MsgKindName(MsgKind::kIntentShip), "intent_ship");
  EXPECT_STREQ(MsgKindName(MsgKind::kRedoWrite), "redo_write");
  EXPECT_STREQ(MsgKindName(MsgKind::kPromote), "promote");
}

}  // namespace
}  // namespace net
}  // namespace nearpm
