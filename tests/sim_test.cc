#include <gtest/gtest.h>

#include "src/sim/cost_model.h"
#include "src/sim/timeline.h"

namespace nearpm {
namespace {

TEST(TimelineTest, SchedulesBackToBack) {
  Timeline tl;
  EXPECT_EQ(tl.Schedule(0, 100.0), 100u);
  EXPECT_EQ(tl.Schedule(0, 50.0), 150u);  // queued behind the first
  EXPECT_EQ(tl.free_at(), 150u);
}

TEST(TimelineTest, RespectsEarliest) {
  Timeline tl;
  EXPECT_EQ(tl.Schedule(1000, 10.0), 1010u);
  EXPECT_EQ(tl.Schedule(0, 10.0), 1020u);
}

TEST(TimelineTest, Reset) {
  Timeline tl;
  tl.Schedule(0, 500.0);
  tl.Reset();
  EXPECT_EQ(tl.free_at(), 0u);
}

TEST(UnitPoolTest, ParallelUnitsOverlap) {
  UnitPool pool(4);
  // Four equal jobs run in parallel on four units.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pool.Schedule(0, 100.0), 100u);
  }
  // The fifth queues behind one of them.
  EXPECT_EQ(pool.Schedule(0, 100.0), 200u);
  EXPECT_EQ(pool.AllIdleAt(), 200u);
}

TEST(UnitPoolTest, PicksEarliestAvailableUnit) {
  UnitPool pool(2);
  pool.Schedule(0, 100.0);   // unit A busy until 100
  pool.Schedule(0, 500.0);   // unit B busy until 500
  EXPECT_EQ(pool.Schedule(0, 10.0), 110u);  // lands on A
}

TEST(UnitPoolTest, SingleUnitSerializes) {
  UnitPool pool(1);
  pool.Schedule(0, 100.0);
  pool.Schedule(0, 100.0);
  EXPECT_EQ(pool.AllIdleAt(), 200u);
}

TEST(CostModelTest, LinesRoundsUp) {
  EXPECT_EQ(CostModel::Lines(0), 0u);
  EXPECT_EQ(CostModel::Lines(1), 1u);
  EXPECT_EQ(CostModel::Lines(64), 1u);
  EXPECT_EQ(CostModel::Lines(65), 2u);
  EXPECT_EQ(CostModel::Lines(4096), 64u);
}

TEST(CostModelTest, CopyCostsGrowWithSize) {
  const CostModel cost;
  EXPECT_LT(cost.CpuCopyNs(64), cost.CpuCopyNs(4096));
  EXPECT_LT(cost.NdpCopyNs(64), cost.NdpCopyNs(4096));
}

// The Figure 17 calibration targets: NDP copy wins modestly at 64 B and by
// roughly 5-6x at 16 kB. The NDP-side figure includes the command path.
TEST(CostModelTest, Figure17EndpointsCalibrated) {
  const CostModel cost;
  const double issue = cost.cmd_post_ns + cost.cmd_device_pipeline_ns;
  const double small = cost.CpuCopyNs(64) / (issue + cost.NdpCopyNs(64));
  const double large =
      cost.CpuCopyNs(16384) / (issue + cost.NdpCopyNs(16384));
  EXPECT_GT(small, 1.0);
  EXPECT_LT(small, 1.5);
  EXPECT_GT(large, 4.5);
  EXPECT_LT(large, 6.5);
}

TEST(CostModelTest, PersistCostScalesWithLines) {
  const CostModel cost;
  EXPECT_DOUBLE_EQ(cost.CpuPersistNs(64),
                   cost.cpu_flush_line_ns + cost.cpu_drain_ns);
  EXPECT_DOUBLE_EQ(cost.CpuPersistNs(128),
                   2 * cost.cpu_flush_line_ns + cost.cpu_drain_ns);
  // clwbs overlap: persisting a page costs far less than line-serial flushes.
  EXPECT_LT(cost.CpuPersistNs(4096), 64 * 60.0);
}

TEST(NsToTimeTest, Rounds) {
  EXPECT_EQ(NsToTime(1.4), 1u);
  EXPECT_EQ(NsToTime(1.6), 2u);
  EXPECT_EQ(NsToTime(0.0), 0u);
}

}  // namespace
}  // namespace nearpm
