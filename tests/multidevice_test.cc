// Multi-device and platform-configuration sweeps: device counts, interleave
// granularities, unit counts, and multithreaded operation all preserve the
// crash-consistency invariants; the PPO ablation breaks them.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/workloads/workload.h"

namespace nearpm {
namespace {

struct PlatformCase {
  int devices;
  std::uint64_t stripe;
  int units;
  std::uint64_t seed;
};

class PlatformSweepTest : public ::testing::TestWithParam<PlatformCase> {};

// The bank-transfer crash property holds on every platform shape (PPO is
// defined for any number of interleaved devices -- Section 9, Scalability).
TEST_P(PlatformSweepTest, CrashConsistentOnAnyPlatform) {
  const PlatformCase& pc = GetParam();
  RuntimeOptions opts;
  opts.mode = pc.devices == 1 ? ExecMode::kNdpSingleDevice
                              : ExecMode::kNdpMultiDelayed;
  opts.num_devices = pc.devices;
  opts.interleave_stripe = pc.stripe;
  opts.hw.units_per_device = pc.units;
  opts.pm_size = 256ull << 20;
  Runtime rt(opts);
  PoolArena arena;

  auto workload = CreateWorkload("hashmap");
  WorkloadConfig config;
  config.mechanism = Mechanism::kLogging;
  config.data_size = 4ull << 20;
  config.initial_keys = 60;
  config.seed = pc.seed;
  ASSERT_TRUE(workload->Setup(rt, arena, config).ok());
  rt.DrainDevices(0);

  Rng rng(pc.seed * 101 + 7);
  const int ops = 20 + static_cast<int>(rng.NextBounded(40));
  for (int op = 0; op < ops; ++op) {
    ASSERT_TRUE(workload->RunOp(0, rng).ok());
  }
  rt.InjectCrash(rng);
  workload->DropVolatile();
  ASSERT_TRUE(workload->Recover().ok());
  EXPECT_TRUE(workload->Verify().ok())
      << pc.devices << " devices, stripe " << pc.stripe << ", " << pc.units
      << " units, seed " << pc.seed;
}

std::vector<PlatformCase> PlatformCases() {
  std::vector<PlatformCase> cases;
  for (int devices : {1, 2, 4}) {
    for (std::uint64_t stripe : {256ull, 1024ull, 4096ull}) {
      for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        cases.push_back(PlatformCase{devices, stripe, 4, seed});
      }
    }
  }
  // Unit-count corners.
  cases.push_back(PlatformCase{2, 256, 1, 3});
  cases.push_back(PlatformCase{2, 256, 8, 3});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlatformSweepTest,
                         ::testing::ValuesIn(PlatformCases()),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param.devices) +
                                  "_s" + std::to_string(info.param.stripe) +
                                  "_u" + std::to_string(info.param.units) +
                                  "_r" + std::to_string(info.param.seed);
                         });

// ---- Multithreaded crash consistency -------------------------------------------

TEST(MultithreadCrashTest, SharedPoolLoggingSurvives) {
  RuntimeOptions opts;
  opts.mode = ExecMode::kNdpMultiDelayed;
  opts.pm_size = 256ull << 20;
  Runtime rt(opts);
  PoolArena arena;

  auto workload = CreateWorkload("redis");  // shared pool across threads
  WorkloadConfig config;
  config.mechanism = Mechanism::kLogging;
  config.threads = 4;
  config.data_size = 4ull << 20;
  config.initial_keys = 50;
  ASSERT_TRUE(workload->Setup(rt, arena, config).ok());
  for (int t = 0; t < 4; ++t) {
    rt.DrainDevices(static_cast<ThreadId>(t));
  }

  Rng rng(77);
  for (int op = 0; op < 120; ++op) {
    ASSERT_TRUE(workload->RunOp(static_cast<ThreadId>(op % 4), rng).ok());
  }
  rt.InjectCrash(rng);
  workload->DropVolatile();
  ASSERT_TRUE(workload->Recover().ok());
  EXPECT_TRUE(workload->Verify().ok());
}

TEST(MultithreadCrashTest, PerThreadPoolsRecoverIndependently) {
  RuntimeOptions opts;
  opts.mode = ExecMode::kNdpMultiDelayed;
  opts.pm_size = 256ull << 20;
  Runtime rt(opts);
  PoolArena arena;

  auto workload = CreateWorkload("memcached");  // pool per thread
  WorkloadConfig config;
  config.mechanism = Mechanism::kLogging;
  config.threads = 3;
  config.data_size = 4ull << 20;
  config.initial_keys = 40;
  ASSERT_TRUE(workload->Setup(rt, arena, config).ok());
  for (int t = 0; t < 3; ++t) {
    rt.DrainDevices(static_cast<ThreadId>(t));
  }
  Rng rng(79);
  for (int op = 0; op < 90; ++op) {
    ASSERT_TRUE(workload->RunOp(static_cast<ThreadId>(op % 3), rng).ok());
  }
  rt.InjectCrash(rng);
  workload->DropVolatile();
  ASSERT_TRUE(workload->Recover().ok());
  EXPECT_TRUE(workload->Verify().ok());
}

// ---- Mode equivalence ------------------------------------------------------------

// All four execution modes compute the same functional result for the same
// seed -- offloading is performance-transparent.
TEST(ModeEquivalenceTest, SameFunctionalStateAcrossModes) {
  std::vector<std::uint64_t> counts;
  for (ExecMode mode :
       {ExecMode::kCpuBaseline, ExecMode::kNdpSingleDevice,
        ExecMode::kNdpMultiSwSync, ExecMode::kNdpMultiDelayed}) {
    RuntimeOptions opts;
    opts.mode = mode;
    opts.pm_size = 256ull << 20;
    Runtime rt(opts);
    PoolArena arena;
    auto workload = CreateWorkload("skiplist");
    WorkloadConfig config;
    config.mechanism = Mechanism::kLogging;
    config.data_size = 4ull << 20;
    config.initial_keys = 100;
    ASSERT_TRUE(workload->Setup(rt, arena, config).ok());
    Rng rng(55);
    for (int op = 0; op < 100; ++op) {
      ASSERT_TRUE(workload->RunOp(0, rng).ok());
    }
    rt.DrainDevices(0);
    ASSERT_TRUE(workload->Verify().ok());
    // Count via a full verify walk (Verify already checked count == walked);
    // load the recorded count for the cross-mode comparison.
    std::uint64_t count = 0;
    ASSERT_TRUE(workload->heap()
                    .Read(0, workload->heap().root() + 16,
                          {reinterpret_cast<std::uint8_t*>(&count), 8})
                    .ok());
    counts.push_back(count);
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[0], counts[2]);
  EXPECT_EQ(counts[0], counts[3]);
}

// ---- The PPO ablation across mechanisms -------------------------------------------

// With enforce_ppo=false, a power failure striking a multi-store operation
// mid-flight (updates partially evicted to PM, the in-flight undo logs lost)
// leaves a torn state recovery cannot repair; with PPO the write-back guard
// makes the logs durable whenever an update survived, so recovery always
// restores the all-old state. Both stores form one atomic pair: after
// recovery they must be either both old or both new.
TEST(PpoAblationSweepTest, NaiveModeEventuallyCorrupts) {
  auto run = [](bool enforce, std::uint64_t seed) -> bool {
    RuntimeOptions opts;
    opts.mode = ExecMode::kNdpMultiDelayed;
    opts.enforce_ppo = enforce;
    opts.pending_line_survival = 0.5;  // some updated lines evict, some not
    opts.pm_size = 64ull << 20;
    Runtime rt(opts);
    PoolArena arena;
    HeapOptions ho;
    ho.mechanism = Mechanism::kLogging;
    ho.data_size = 1ull << 20;
    auto heap = PersistentHeap::Create(rt, arena, ho);
    EXPECT_TRUE(heap.ok());
    const PmAddr a = (*heap)->root();
    const PmAddr b = (*heap)->root() + 8192;  // a different device stripe
    // Committed pair (old state).
    EXPECT_TRUE((*heap)->BeginOp(0).ok());
    EXPECT_TRUE((*heap)->Store<std::uint64_t>(0, a, 1).ok());
    EXPECT_TRUE((*heap)->Store<std::uint64_t>(0, b, 1).ok());
    EXPECT_TRUE((*heap)->CommitOp(0).ok());
    rt.DrainDevices(0);
    // Torn operation: both stores issued, power fails before commit.
    EXPECT_TRUE((*heap)->BeginOp(0).ok());
    EXPECT_TRUE((*heap)->Store<std::uint64_t>(0, a, 2).ok());
    EXPECT_TRUE((*heap)->Store<std::uint64_t>(0, b, 2).ok());
    Rng rng(seed);
    rt.InjectCrash(rng);
    (*heap)->DropVolatile();
    EXPECT_TRUE((*heap)->Recover().ok());
    const std::uint64_t va = *(*heap)->Load<std::uint64_t>(0, a);
    const std::uint64_t vb = *(*heap)->Load<std::uint64_t>(0, b);
    const bool consistent = va == vb;
    if (enforce) {
      EXPECT_TRUE(consistent) << "PPO violated at seed " << seed << ": a="
                              << va << " b=" << vb;
    }
    return consistent;
  };

  int naive_corruptions = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    run(/*enforce=*/true, seed);  // asserts internally
    naive_corruptions += run(/*enforce=*/false, seed) ? 0 : 1;
  }
  EXPECT_GT(naive_corruptions, 0)
      << "the ablation never surfaced the Section 2.3 inconsistency";
}

}  // namespace
}  // namespace nearpm
