// Tests for src/serve: routing, admission control, batching, the threaded
// and deterministic execution modes, cross-shard MultiPut atomicity through
// crashes, and throughput scaling across shards.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "src/serve/mpsc_ring.h"
#include "src/serve/router.h"
#include "src/serve/service.h"

namespace nearpm {
namespace serve {
namespace {

std::vector<std::uint8_t> Value(std::uint64_t tag, std::uint32_t size = 16) {
  std::vector<std::uint8_t> v(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    v[i] = static_cast<std::uint8_t>(tag + i);
  }
  return v;
}

ServeOptions SmallOptions(int shards) {
  ServeOptions so;
  so.shards = shards;
  so.workers_per_shard = 1;
  so.queue_capacity = 256;
  so.batch_max = 4;
  so.table_slots = 128;
  so.value_size = 16;
  return so;
}

TEST(ShardRouterTest, StableAndInRange) {
  ShardRouter router(4);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const int s = router.ShardFor(key);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
    EXPECT_EQ(s, router.ShardFor(key)) << "routing must be deterministic";
  }
}

TEST(ShardRouterTest, SpreadsKeysAcrossShards) {
  ShardRouter router(4);
  std::vector<int> hits(4, 0);
  for (std::uint64_t key = 0; key < 4000; ++key) {
    ++hits[router.ShardFor(key)];
  }
  for (int s = 0; s < 4; ++s) {
    // A uniform split gives 1000 per shard; the hash must not collapse.
    EXPECT_GT(hits[s], 500) << "shard " << s << " starved";
    EXPECT_LT(hits[s], 1500) << "shard " << s << " overloaded";
  }
}

TEST(ShardRouterTest, ParticipantsSortedUnique) {
  ShardRouter router(3);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t key = 0; key < 64; ++key) {
    keys.push_back(key);
  }
  const std::vector<int> participants = router.ParticipantsFor(keys);
  EXPECT_EQ(participants.size(), 3u);
  for (std::size_t i = 1; i < participants.size(); ++i) {
    EXPECT_LT(participants[i - 1], participants[i]);
  }
}

TEST(MpscRingQueueTest, RejectsWhenFull) {
  MpscRing<int> queue(2);
  int a = 1;
  int b = 2;
  int c = 3;
  EXPECT_TRUE(queue.TryPush(a));
  EXPECT_TRUE(queue.TryPush(b));
  EXPECT_FALSE(queue.TryPush(c)) << "a full ring must reject, not block";
  auto out = queue.TryPop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, 1);
  EXPECT_TRUE(queue.TryPush(c));
}

TEST(KvServiceTest, PutGetRoundtripAcrossShards) {
  auto svc = KvService::Create(SmallOptions(4));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  std::vector<std::future<ServeResult>> futures;
  for (std::uint64_t key = 0; key < 40; ++key) {
    ServeRequest req;
    req.kind = RequestKind::kPut;
    req.key = key;
    req.value = Value(key);
    auto fut = (*svc)->Submit(std::move(req));
    ASSERT_TRUE(fut.ok()) << fut.status().ToString();
    futures.push_back(std::move(*fut));
  }
  (*svc)->Pump();
  for (auto& fut : futures) {
    EXPECT_TRUE(fut.get().status.ok());
  }

  futures.clear();
  for (std::uint64_t key = 0; key < 40; ++key) {
    ServeRequest req;
    req.kind = RequestKind::kGet;
    req.key = key;
    auto fut = (*svc)->Submit(std::move(req));
    ASSERT_TRUE(fut.ok()) << fut.status().ToString();
    futures.push_back(std::move(*fut));
  }
  (*svc)->Pump();
  for (std::uint64_t key = 0; key < 40; ++key) {
    ServeResult r = futures[key].get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.value, Value(key)) << "key " << key;
    EXPECT_EQ(r.shard, (*svc)->router().ShardFor(key));
    EXPECT_GT(r.latency_ns, 0u);
  }
}

TEST(KvServiceTest, FullQueueRejectsWithResourceExhausted) {
  ServeOptions so = SmallOptions(1);
  so.queue_capacity = 4;
  auto svc = KvService::Create(so);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  int accepted = 0;
  int rejected = 0;
  for (std::uint64_t key = 0; key < 10; ++key) {
    ServeRequest req;
    req.kind = RequestKind::kPut;
    req.key = key;
    req.value = Value(key);
    auto fut = (*svc)->Submit(std::move(req));
    if (fut.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(fut.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(rejected, 6);
  (*svc)->Pump();
  EXPECT_EQ((*svc)->Stats().rejected, 6u);

  // Draining the queue re-opens admission.
  ServeRequest req;
  req.kind = RequestKind::kPut;
  req.key = 99;
  req.value = Value(99);
  EXPECT_TRUE((*svc)->Submit(std::move(req)).ok());
}

TEST(KvServiceTest, BatchingAmortizesFrontEndCost) {
  auto makespan = [](int batch_max) {
    ServeOptions so = SmallOptions(1);
    so.batch_max = batch_max;
    auto svc = KvService::Create(so);
    EXPECT_TRUE(svc.ok());
    for (std::uint64_t key = 0; key < 64; ++key) {
      ServeRequest req;
      req.kind = RequestKind::kPut;
      req.key = key;
      req.value = Value(key);
      EXPECT_TRUE((*svc)->Submit(std::move(req)).ok());
    }
    (*svc)->Pump();
    return (*svc)->Stats().makespan_ns;
  };
  const SimTime unbatched = makespan(1);
  const SimTime batched = makespan(8);
  EXPECT_LT(batched, unbatched)
      << "one doorbell+fence per batch must beat per-request charging";
}

TEST(KvServiceTest, ThreadedModeServesAndStops) {
  ServeOptions so = SmallOptions(2);
  so.workers_per_shard = 2;
  auto svc = KvService::Create(so);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  (*svc)->Start();
  std::vector<std::future<ServeResult>> futures;
  for (std::uint64_t key = 0; key < 100; ++key) {
    ServeRequest req;
    req.kind = RequestKind::kPut;
    req.key = key;
    req.value = Value(key);
    auto fut = (*svc)->Submit(std::move(req));
    if (fut.ok()) {
      futures.push_back(std::move(*fut));
    }
  }
  for (auto& fut : futures) {
    EXPECT_TRUE(fut.get().status.ok());
  }
  (*svc)->Stop();
  EXPECT_EQ((*svc)->Stats().completed, futures.size());
  EXPECT_EQ((*svc)->PpoViolations(), 0u);
}

TEST(KvServiceTest, PipelinedGeometryDeterministicAcrossPumpAndThreads) {
  // Same pre-filled queues, one worker per shard: the deterministic Pump
  // drain and the threaded drain must produce identical simulated timings
  // and identical pipeline stall counts under a pipelined LSQ-bounded
  // geometry. OS scheduling may interleave shards differently but must not
  // leak into any virtual-time observable.
  ServeOptions so = SmallOptions(2);
  // One slow unit (0.25 GB/s AXI, 256 B payloads -> ~1 us of DMA per put):
  // execute drains far slower than the CPU posts, the dispatch stage runs
  // ahead, and the 2-deep LSQ actually fills.
  so.value_size = 256;
  so.hw.units_per_device = 1;
  so.hw.cost.ndp_dma_ns_per_byte = 4.0;
  so.hw.pipeline.dispatch_ns = 20;
  so.hw.pipeline.writeback_ns = 40;
  so.hw.pipeline.lsq_depth = 2;

  auto pumped = KvService::Create(so);
  ASSERT_TRUE(pumped.ok()) << pumped.status().ToString();
  auto threaded = KvService::Create(so);
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();

  std::vector<std::future<ServeResult>> pump_futs;
  for (std::uint64_t key = 0; key < 200; ++key) {
    ServeRequest req;
    req.kind = RequestKind::kPut;
    req.key = key;
    req.value = Value(key);
    auto fut = (*pumped)->Submit(std::move(req));
    ASSERT_TRUE(fut.ok()) << fut.status().ToString();
    pump_futs.push_back(std::move(*fut));
  }
  (*pumped)->Pump();
  for (auto& fut : pump_futs) {
    EXPECT_TRUE(fut.get().status.ok());
  }

  // Enqueue everything before Start() so the threaded worker sees the same
  // full queue (and thus the same batch boundaries) as Pump did.
  std::vector<std::future<ServeResult>> thr_futs;
  for (std::uint64_t key = 0; key < 200; ++key) {
    ServeRequest req;
    req.kind = RequestKind::kPut;
    req.key = key;
    req.value = Value(key);
    auto fut = (*threaded)->Submit(std::move(req));
    ASSERT_TRUE(fut.ok()) << fut.status().ToString();
    thr_futs.push_back(std::move(*fut));
  }
  (*threaded)->Start();
  for (auto& fut : thr_futs) {
    EXPECT_TRUE(fut.get().status.ok());
  }
  (*threaded)->Stop();

  const ServeStats a = (*pumped)->Stats();
  const ServeStats b = (*threaded)->Stats();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.puts, b.puts);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_EQ(a.request_p50_ns, b.request_p50_ns);
  EXPECT_EQ(a.request_p99_ns, b.request_p99_ns);
  for (int s = 0; s < 2; ++s) {
    Runtime& ra = (*pumped)->shard(s).rt();
    Runtime& rb = (*threaded)->shard(s).rt();
    ASSERT_EQ(ra.num_devices(), rb.num_devices());
    std::uint64_t stalls_a = 0;
    std::uint64_t stalls_b = 0;
    for (int d = 0; d < ra.num_devices(); ++d) {
      stalls_a += ra.device(d).stats().lsq_stalls;
      stalls_b += rb.device(d).stats().lsq_stalls;
    }
    EXPECT_EQ(stalls_a, stalls_b) << "shard " << s;
    EXPECT_EQ(ra.stats().MaxThreadTime(), rb.stats().MaxThreadTime())
        << "shard " << s;
  }
}

TEST(KvServiceTest, PipelinedLsqStallsAreReproducibleAcrossPumpRuns) {
  // Two virtual workers on one shard: their command streams interleave on
  // the single slow unit, the 1-deep LSQ fills, and two identical Pump
  // services must count the same stalls and land on the same virtual clock.
  ServeOptions so = SmallOptions(1);
  so.workers_per_shard = 2;
  so.value_size = 256;
  so.hw.units_per_device = 1;
  so.hw.cost.ndp_dma_ns_per_byte = 4.0;  // 0.25 GB/s: ~1 us of DMA per put
  so.hw.pipeline.dispatch_ns = 20;
  so.hw.pipeline.writeback_ns = 40;
  so.hw.pipeline.lsq_depth = 1;

  const auto run = [&so]() -> std::pair<std::uint64_t, SimTime> {
    auto svc = KvService::Create(so);
    EXPECT_TRUE(svc.ok()) << svc.status().ToString();
    std::vector<std::future<ServeResult>> futures;
    for (std::uint64_t key = 0; key < 120; ++key) {
      ServeRequest req;
      req.kind = RequestKind::kPut;
      req.key = key;
      req.value = Value(key);
      auto fut = (*svc)->Submit(std::move(req));
      EXPECT_TRUE(fut.ok()) << fut.status().ToString();
      futures.push_back(std::move(*fut));
    }
    (*svc)->Pump();
    for (auto& fut : futures) {
      EXPECT_TRUE(fut.get().status.ok());
    }
    Runtime& rt = (*svc)->shard(0).rt();
    std::uint64_t stalls = 0;
    for (int d = 0; d < rt.num_devices(); ++d) {
      stalls += rt.device(d).stats().lsq_stalls;
    }
    return {stalls, rt.stats().MaxThreadTime()};
  };

  const auto [stalls_a, clock_a] = run();
  const auto [stalls_b, clock_b] = run();
  EXPECT_GT(stalls_a, 0u) << "the bounded LSQ was never exercised";
  EXPECT_EQ(stalls_a, stalls_b);
  EXPECT_EQ(clock_a, clock_b);
}

TEST(KvServiceTest, MultiPutAppliesToEveryShard) {
  auto svc = KvService::Create(SmallOptions(3));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  std::vector<KvPair> pairs;
  for (std::uint64_t key = 500; key < 506; ++key) {
    pairs.push_back(KvPair{key, Value(key)});
  }
  ASSERT_TRUE((*svc)->ExecuteMultiPut(pairs).ok());
  for (const KvPair& pair : pairs) {
    Shard& shard = (*svc)->shard((*svc)->router().ShardFor(pair.key));
    std::lock_guard lock(shard.mu());
    auto got = shard.Get(shard.TxnTid(), pair.key);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, pair.value);
  }
  EXPECT_EQ((*svc)->Stats().txns, 1u);
}

TEST(KvServiceTest, CrashDuringCrossShardSyncRecoversAllOrNothing) {
  auto svc = KvService::Create(SmallOptions(3));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  std::vector<KvPair> pairs;
  for (std::uint64_t key = 700; key < 706; ++key) {
    pairs.push_back(KvPair{key, Value(key)});
  }
  // Stop after the first participant's local-complete: some shards applied
  // their slice, others never saw it -- the worst window for atomicity.
  TxnStop stop;
  stop.phase = TxnStopPhase::kAfterApply;
  stop.apply_ordinal = 0;
  const Status stopped = (*svc)->ExecuteMultiPut(pairs, stop);
  EXPECT_EQ(stopped.code(), StatusCode::kUnavailable);

  std::vector<CrashPlan> plans((*svc)->num_shards());
  (*svc)->CrashAll(plans);
  ASSERT_TRUE((*svc)->RecoverAll().ok());

  // The durable intent must have been redone on every shard: all-or-ALL.
  for (const KvPair& pair : pairs) {
    Shard& shard = (*svc)->shard((*svc)->router().ShardFor(pair.key));
    std::lock_guard lock(shard.mu());
    auto got = shard.Get(shard.TxnTid(), pair.key);
    ASSERT_TRUE(got.ok()) << "pair " << pair.key << " lost: "
                          << got.status().ToString();
    EXPECT_EQ(*got, pair.value);
  }
  EXPECT_EQ((*svc)->PpoViolations(), 0u);
}

TEST(KvServiceTest, ThroughputScalesWithShards) {
  auto throughput = [](int shards) {
    auto svc = KvService::Create(SmallOptions(shards));
    EXPECT_TRUE(svc.ok());
    for (std::uint64_t key = 0; key < 200; ++key) {
      ServeRequest req;
      req.kind = RequestKind::kPut;
      req.key = key;
      req.value = Value(key);
      EXPECT_TRUE((*svc)->Submit(std::move(req)).ok());
    }
    (*svc)->Pump();
    return (*svc)->Stats().throughput_ops_per_sec;
  };
  const double one = throughput(1);
  const double four = throughput(4);
  EXPECT_GT(one, 0.0);
  // Shards run on independent virtual machines; the makespan is the slowest
  // shard's clock, so 4 shards must come well out ahead of 1.
  EXPECT_GT(four, 2.0 * one);
}

TEST(KvServiceTest, StatsExposeQueueAndLatencyInstrumentation) {
  auto svc = KvService::Create(SmallOptions(2));
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  for (std::uint64_t key = 0; key < 50; ++key) {
    ServeRequest req;
    req.kind = RequestKind::kPut;
    req.key = key;
    req.value = Value(key);
    ASSERT_TRUE((*svc)->Submit(std::move(req)).ok());
  }
  (*svc)->Pump();
  const ServeStats stats = (*svc)->Stats();
  EXPECT_EQ(stats.completed, 50u);
  EXPECT_EQ(stats.puts, 50u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.makespan_ns, 0u);
  EXPECT_GT(stats.request_p50_ns, 0u);
  EXPECT_GE(stats.request_p99_ns, stats.request_p50_ns);
  EXPECT_GT(stats.throughput_ops_per_sec, 0.0);
  // The registry is scrape-time only: the depth and batch-size histograms
  // appear after PublishMetrics folds the worker-local blocks in.
  (*svc)->PublishMetrics();
  EXPECT_NE((*svc)->metrics().histograms().find("serve_queue_depth"),
            (*svc)->metrics().histograms().end());
  EXPECT_NE((*svc)->metrics().histograms().find("serve_batch_size"),
            (*svc)->metrics().histograms().end());
}

// Regression for the deferred-metrics split: Stats() is one merge pass over
// the worker-local blocks and must equal the published registry totals, and
// both must be idempotent (scraping twice never double-counts).
TEST(KvServiceTest, StatsEqualsPublishedWorkerLocalCounts) {
  ServeOptions so = SmallOptions(2);
  so.workers_per_shard = 2;
  auto svc = KvService::Create(so);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  for (std::uint64_t key = 0; key < 60; ++key) {
    ServeRequest req;
    req.kind = key % 4 == 3 ? RequestKind::kGet : RequestKind::kPut;
    req.key = key;
    if (req.kind == RequestKind::kPut) {
      req.value = Value(key);
    }
    ASSERT_TRUE((*svc)->Submit(std::move(req)).ok());
  }
  (*svc)->Pump();
  std::vector<KvPair> pairs;
  for (std::uint64_t key = 900; key < 904; ++key) {
    pairs.push_back(KvPair{key, Value(key)});
  }
  ASSERT_TRUE((*svc)->ExecuteMultiPut(pairs).ok());

  const ServeStats first = (*svc)->Stats();
  EXPECT_EQ(first.completed, 60u);
  EXPECT_EQ(first.puts, 45u);
  EXPECT_EQ(first.gets, 15u);
  EXPECT_EQ(first.txns, 1u);

  // Stats() is pure: calling it again changes nothing.
  const ServeStats second = (*svc)->Stats();
  EXPECT_EQ(second.completed, first.completed);
  EXPECT_EQ(second.batches, first.batches);
  EXPECT_EQ(second.request_p99_ns, first.request_p99_ns);

  // Publishing twice stores the same totals (no accumulation), and the
  // registry view agrees with the merge pass.
  (*svc)->PublishMetrics();
  (*svc)->PublishMetrics();
  const auto& counters = (*svc)->metrics().counters();
  EXPECT_EQ(counters.at("serve_completed").load(), first.completed);
  EXPECT_EQ(counters.at("serve_puts").load(), first.puts);
  EXPECT_EQ(counters.at("serve_gets").load(), first.gets);
  EXPECT_EQ(counters.at("serve_txns").load(), first.txns);
  EXPECT_EQ(counters.at("serve_batches").load(), first.batches);
  EXPECT_EQ(counters.at("serve_enqueued").load(), 60u);
  const auto& histograms = (*svc)->metrics().histograms();
  // All 60 completions were local requests (the MultiPut ran directly, not
  // through a queue), so each added one request-latency sample.
  EXPECT_EQ(histograms.at("serve_request_ns").count(), 60u);
  EXPECT_EQ(histograms.at("serve_request_ns").Percentile(0.99),
            first.request_p99_ns);
  EXPECT_EQ(histograms.at("serve_txn_ns").count(), first.txns);
}

}  // namespace
}  // namespace serve
}  // namespace nearpm
