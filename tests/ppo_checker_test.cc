// PpoChecker tests: each Section 4 invariant is exercised on synthetic event
// streams (violating and clean variants), then on real runs -- a PPO-enforced
// schedule must check clean, and the enforce_ppo=false ablation (the naive
// offload of Section 2.3) must produce a detected ordering violation.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/core/runtime.h"
#include "src/trace/ppo_checker.h"
#include "src/trace/recorder.h"
#include "src/trace/trace_event.h"

namespace nearpm {
namespace {

// Assigns the recorder-style global order (1-based record sequence) the
// checker keys every "issued before" relation on.
std::vector<TraceEvent> Sequenced(std::vector<TraceEvent> events) {
  std::uint64_t order = 0;
  for (TraceEvent& e : events) {
    e.order = ++order;
  }
  return events;
}

TraceEvent UnitExec(std::uint64_t seq, std::uint32_t pid, SimTime ts,
                    SimTime dur, AddrRange write_range,
                    AddrRange read_range = {}) {
  TraceEvent e;
  e.phase = TracePhase::kUnitExec;
  e.pid = pid;
  e.tid = kTraceUnitTidBase;
  e.ts = ts;
  e.dur = dur;
  e.seq = seq;
  e.range = write_range;
  e.range2 = read_range;
  return e;
}

TraceEvent DeferredExec(std::uint64_t seq, std::uint32_t pid, SimTime ts,
                        SimTime dur, AddrRange write_range) {
  TraceEvent e;
  e.phase = TracePhase::kDeferredExec;
  e.pid = pid;
  e.tid = kTraceMaintenanceTid;
  e.ts = ts;
  e.dur = dur;
  e.seq = seq;
  e.range = write_range;
  return e;
}

TraceEvent HostEvent(TracePhase phase, SimTime ts, AddrRange range = {}) {
  TraceEvent e;
  e.phase = phase;
  e.pid = kTraceHostPid;
  e.ts = ts;
  e.range = range;
  return e;
}

TraceEvent DeviceInstant(TracePhase phase, std::uint64_t seq,
                         std::uint32_t pid, SimTime ts,
                         std::uint64_t arg0 = 0) {
  TraceEvent e;
  e.phase = phase;
  e.pid = pid;
  e.ts = ts;
  e.seq = seq;
  e.arg0 = arg0;
  return e;
}

// Mirrors CrashOutcome values recorded in kCrashOutcome.arg0.
constexpr std::uint64_t kOutcomeLost = 0;
constexpr std::uint64_t kOutcomeDurable = 2;

// ---- Invariant 1: loads stall behind conflicting in-flight writes -----------

TEST(PpoCheckerSynthetic, Invariant1FlagsReadInsideWriteWindow) {
  const auto violations = PpoChecker{}.Check(Sequenced({
      UnitExec(7, TraceDevicePid(0), 100, 100, {0, 64}),
      HostEvent(TracePhase::kCpuRead, 150, {32, 40}),
  }));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, 1);
  EXPECT_EQ(violations[0].seq, 7u);
}

TEST(PpoCheckerSynthetic, Invariant1AcceptsStalledOrDisjointReads) {
  const auto violations = PpoChecker{}.Check(Sequenced({
      UnitExec(7, TraceDevicePid(0), 100, 100, {0, 64}),
      // Post-stall: the load lands exactly at the request's completion.
      HostEvent(TracePhase::kCpuRead, 200, {32, 40}),
      // Overlap-free load while the request is still in flight.
      HostEvent(TracePhase::kCpuRead, 150, {64, 128}),
  }));
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

// ---- Invariant 2: persists order conflicting requests first -----------------

TEST(PpoCheckerSynthetic, Invariant2FlagsUnorderedPersistOverReadSet) {
  // The persist overlaps the in-flight request's *read* operand (the old
  // data an undo-log create is copying) and nothing retired the request.
  const auto violations = PpoChecker{}.Check(Sequenced({
      UnitExec(9, TraceDevicePid(0), 100, 400, {4096, 8256}, {0, 4096}),
      HostEvent(TracePhase::kCpuPersist, 200, {0, 64}),
  }));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, 2);
  EXPECT_EQ(violations[0].seq, 9u);
}

TEST(PpoCheckerSynthetic, Invariant2AcceptsRetiredRequest) {
  const auto violations = PpoChecker{}.Check(Sequenced({
      UnitExec(9, TraceDevicePid(0), 100, 400, {4096, 8256}, {0, 4096}),
      DeviceInstant(TracePhase::kRetire, 9, TraceDevicePid(0), 190),
      HostEvent(TracePhase::kCpuPersist, 200, {0, 64}),
  }));
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

TEST(PpoCheckerSynthetic, Invariant2RetireIsPerDevice) {
  // A retire on a different device does not order this device's copy of the
  // duplicated command.
  const auto violations = PpoChecker{}.Check(Sequenced({
      UnitExec(9, TraceDevicePid(0), 100, 400, {4096, 8256}, {0, 4096}),
      DeviceInstant(TracePhase::kRetire, 9, TraceDevicePid(1), 190),
      HostEvent(TracePhase::kCpuPersist, 200, {0, 64}),
  }));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, 2);
}

TEST(PpoCheckerSynthetic, WrappedRingsDoNotFabricateViolations) {
  // A span and its retire land on different recorder tracks (unit vs
  // dispatcher tid). Once dispatcher-track chatter wraps its ring past the
  // retire while the span's quiet track keeps the span, a raw merge would
  // read as an unordered persist; Snapshot must trim both to the newest
  // consistent suffix instead, so long runs never fabricate violations.
  TraceRecorderOptions options;
  options.ring_capacity = 2;
  TraceRecorder recorder(options);
  recorder.Record(UnitExec(7, TraceDevicePid(0), 100, 100, {0, 64}));
  recorder.Record(DeviceInstant(TracePhase::kRetire, 7, TraceDevicePid(0),
                                110));
  recorder.Record(HostEvent(TracePhase::kCpuPersist, 120, {0, 64}));
  recorder.Record(DeviceInstant(TracePhase::kFifoEnqueue, 8, TraceDevicePid(0),
                                130));
  recorder.Record(DeviceInstant(TracePhase::kFifoEnqueue, 9, TraceDevicePid(0),
                                140));
  ASSERT_GT(recorder.dropped(), 0u);
  const auto violations = PpoChecker{}.Check(recorder);
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

// ---- Invariant 3: commits follow synchronization ----------------------------

TEST(PpoCheckerSynthetic, Invariant3FlagsEarlyLogDeletionAcrossDevices) {
  // Device 1 is still executing the duplicated request when device 0's
  // maintenance engine starts deleting the log -- the Section 2.3 hazard.
  const auto violations = PpoChecker{}.Check(Sequenced({
      UnitExec(1, TraceDevicePid(0), 100, 100, {0, 64}),
      UnitExec(1, TraceDevicePid(1), 100, 300, {64, 128}),
      DeferredExec(2, TraceDevicePid(0), 250, 50, {1 << 20, (1 << 20) + 64}),
  }));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, 3);
  EXPECT_EQ(violations[0].seq, 2u);
}

TEST(PpoCheckerSynthetic, Invariant3AcceptsDeletionAfterSync) {
  const auto violations = PpoChecker{}.Check(Sequenced({
      UnitExec(1, TraceDevicePid(0), 100, 100, {0, 64}),
      UnitExec(1, TraceDevicePid(1), 100, 300, {64, 128}),
      DeferredExec(2, TraceDevicePid(0), 400, 50, {1 << 20, (1 << 20) + 64}),
  }));
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

TEST(PpoCheckerSynthetic, Invariant3SkipsSingleDeviceEpochs) {
  // One device orders same-address work through its in-flight table; the
  // cross-device check does not apply.
  const auto violations = PpoChecker{}.Check(Sequenced({
      UnitExec(1, TraceDevicePid(0), 100, 300, {0, 64}),
      DeferredExec(2, TraceDevicePid(0), 250, 50, {1 << 20, (1 << 20) + 64}),
  }));
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

// ---- Invariant 4: recovery replays exactly the in-flight window -------------

TEST(PpoCheckerSynthetic, Invariant4FlagsReplayWithoutCrash) {
  const auto violations = PpoChecker{}.Check(Sequenced({
      DeviceInstant(TracePhase::kRecoveryReplay, 5, TraceDevicePid(0), 0),
  }));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, 4);
}

TEST(PpoCheckerSynthetic, Invariant4AcceptsInFlightReplay) {
  const auto violations = PpoChecker{}.Check(Sequenced({
      UnitExec(5, TraceDevicePid(0), 100, 400, {0, 64}),
      DeviceInstant(TracePhase::kCrash, 0, TraceDevicePid(0), 300),
      DeviceInstant(TracePhase::kCrashOutcome, 5, TraceDevicePid(0), 300,
                    kOutcomeLost),
      DeviceInstant(TracePhase::kRecoveryReplay, 5, TraceDevicePid(0), 300),
  }));
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

TEST(PpoCheckerSynthetic, Invariant4FlagsDoubleReplay) {
  const auto violations = PpoChecker{}.Check(Sequenced({
      UnitExec(5, TraceDevicePid(0), 100, 400, {0, 64}),
      DeviceInstant(TracePhase::kCrash, 0, TraceDevicePid(0), 300),
      DeviceInstant(TracePhase::kCrashOutcome, 5, TraceDevicePid(0), 300,
                    kOutcomeLost),
      DeviceInstant(TracePhase::kRecoveryReplay, 5, TraceDevicePid(0), 300),
      DeviceInstant(TracePhase::kRecoveryReplay, 5, TraceDevicePid(0), 300),
  }));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, 4);
}

TEST(PpoCheckerSynthetic, Invariant4FlagsReplayOfUnissuedRequest) {
  const auto violations = PpoChecker{}.Check(Sequenced({
      DeviceInstant(TracePhase::kCrash, 0, TraceDevicePid(0), 300),
      DeviceInstant(TracePhase::kRecoveryReplay, 9, TraceDevicePid(0), 300),
  }));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, 4);
  EXPECT_EQ(violations[0].seq, 9u);
}

TEST(PpoCheckerSynthetic, Invariant4FlagsReplayOfDurableRequest) {
  const auto violations = PpoChecker{}.Check(Sequenced({
      UnitExec(5, TraceDevicePid(0), 100, 150, {0, 64}),
      DeviceInstant(TracePhase::kCrash, 0, TraceDevicePid(0), 300),
      DeviceInstant(TracePhase::kCrashOutcome, 5, TraceDevicePid(0), 300,
                    kOutcomeDurable),
      DeviceInstant(TracePhase::kRecoveryReplay, 5, TraceDevicePid(0), 300),
  }));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, 4);
}

// ---- Epoch handling and caps ------------------------------------------------

TEST(PpoCheckerSynthetic, EpochsAreCheckedIndependently) {
  // The span and the read overlap in timestamps but belong to different
  // epochs (clocks restarted in between) -- no relation between them.
  std::vector<TraceEvent> events = Sequenced({
      UnitExec(7, TraceDevicePid(0), 100, 100, {0, 64}),
      HostEvent(TracePhase::kCpuRead, 150, {32, 40}),
  });
  events[1].epoch = 1;
  const auto violations = PpoChecker{}.Check(events);
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

TEST(PpoCheckerSynthetic, MaxViolationsCapsTheReport) {
  PpoChecker checker;
  checker.max_violations = 1;
  const auto violations = checker.Check(Sequenced({
      UnitExec(7, TraceDevicePid(0), 100, 100, {0, 64}),
      HostEvent(TracePhase::kCpuRead, 110, {0, 8}),
      HostEvent(TracePhase::kCpuRead, 120, {8, 16}),
  }));
  EXPECT_EQ(violations.size(), 1u);
}

TEST(PpoCheckerSynthetic, ReportFormatsViolations) {
  EXPECT_NE(PpoChecker::Report({}).find("hold"), std::string::npos);
  const auto violations = PpoChecker{}.Check(Sequenced({
      UnitExec(7, TraceDevicePid(0), 100, 100, {0, 64}),
      HostEvent(TracePhase::kCpuRead, 150, {32, 40}),
  }));
  const std::string report = PpoChecker::Report(violations);
  EXPECT_NE(report.find("invariant 1"), std::string::npos);
  EXPECT_NE(report.find("seq=7"), std::string::npos);
}

// ---- Real schedules: enforced runs are clean, the ablation is caught --------

// The Section 2.3 scenario at runtime level: an undo-log create is in flight
// near memory while the CPU immediately loads the log slot the device is
// still writing. With PPO the load stalls (Invariant 1); without it the load
// races the device.
std::vector<PpoViolation> RunAblationSchedule(bool enforce_ppo) {
  RuntimeOptions options;
  options.mode = ExecMode::kNdpMultiDelayed;
  options.enforce_ppo = enforce_ppo;
  options.pm_size = 16ull << 20;
  Runtime rt(options);
  TraceRecorder recorder;
  rt.AttachTrace(&recorder);
  auto pool = rt.RegisterPool(0, 1 << 20);
  EXPECT_TRUE(pool.ok());

  const PmAddr slot = 512 * 1024;
  EXPECT_TRUE(rt.UndologCreate(*pool, 0, /*tx_id=*/1, /*old_data=*/0,
                               /*size=*/4096, slot)
                  .ok());
  // Load the slot header the device is still writing.
  (void)rt.Load<std::uint64_t>(0, slot);
  const PmAddr slots[] = {slot};
  EXPECT_TRUE(rt.CommitLog(*pool, 0, slots).ok());
  rt.DrainDevices(0);
  return PpoChecker{}.Check(recorder);
}

TEST(PpoCheckerRuntime, EnforcedScheduleChecksClean) {
  const auto violations = RunAblationSchedule(/*enforce_ppo=*/true);
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

TEST(PpoCheckerHistory, WrappedRingYieldsInsufficientHistory) {
  // A tiny recorder ring wraps while the ablation schedule runs; the
  // surviving snapshot starts mid-stream. Demanding full history must turn
  // that into an explicit invariant-0 verdict instead of a silent (and
  // unsound) pass over the tail.
  RuntimeOptions options;
  options.num_devices = 2;
  options.mode = ExecMode::kNdpMultiDelayed;
  options.enforce_ppo = false;
  options.pm_size = 16ull << 20;
  Runtime rt(options);
  TraceRecorderOptions trace_options;
  trace_options.ring_capacity = 4;  // guaranteed wrap on any real schedule
  TraceRecorder recorder(trace_options);
  rt.AttachTrace(&recorder);
  auto pool = rt.RegisterPool(0, 1 << 20);
  ASSERT_TRUE(pool.ok());
  const PmAddr slot = 512 * 1024;
  ASSERT_TRUE(rt.UndologCreate(*pool, 0, /*tx_id=*/1, /*old_data=*/0,
                               /*size=*/4096, slot)
                  .ok());
  (void)rt.Load<std::uint64_t>(0, slot);
  const PmAddr slots[] = {slot};
  ASSERT_TRUE(rt.CommitLog(*pool, 0, slots).ok());
  rt.DrainDevices(0);
  // Overrun the host thread's track so the earliest events (the undo-log
  // issue and the racing load above) are overwritten.
  const std::array<std::uint8_t, 8> fill{0x11, 0x11, 0x11, 0x11,
                                         0x11, 0x11, 0x11, 0x11};
  for (int i = 0; i < 8; ++i) {
    rt.Write(0, static_cast<PmAddr>(i) * 64, fill);
  }

  const std::vector<TraceEvent> snapshot = recorder.Snapshot();
  ASSERT_FALSE(snapshot.empty());
  ASSERT_GT(snapshot.front().order, 1u) << "ring did not wrap";

  PpoChecker strict;
  strict.require_full_history = true;
  const auto violations = strict.Check(snapshot);
  ASSERT_EQ(violations.size(), 1u) << PpoChecker::Report(violations);
  EXPECT_EQ(violations.front().invariant, 0);

  // The default (trimmed-tail audit) mode must not fabricate the verdict.
  for (const PpoViolation& v : PpoChecker{}.Check(snapshot)) {
    EXPECT_NE(v.invariant, 0) << v.detail;
  }
}

TEST(PpoCheckerHistory, FullSnapshotPassesStrictMode) {
  // Same schedule, ample ring: strict mode must not fire invariant 0.
  const auto violations = [] {
    RuntimeOptions options;
    options.num_devices = 2;
    options.mode = ExecMode::kNdpMultiDelayed;
    options.enforce_ppo = true;
    options.pm_size = 16ull << 20;
    Runtime rt(options);
    TraceRecorder recorder;
    rt.AttachTrace(&recorder);
    auto pool = rt.RegisterPool(0, 1 << 20);
    const PmAddr slot = 512 * 1024;
    (void)rt.UndologCreate(*pool, 0, 1, 0, 4096, slot);
    const PmAddr slots[] = {slot};
    (void)rt.CommitLog(*pool, 0, slots);
    rt.DrainDevices(0);
    PpoChecker strict;
    strict.require_full_history = true;
    return strict.Check(recorder);
  }();
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

TEST(PpoCheckerRuntime, AblationWithoutPpoIsDetected) {
  const auto violations = RunAblationSchedule(/*enforce_ppo=*/false);
  ASSERT_FALSE(violations.empty());
  bool saw_invariant1 = false;
  for (const PpoViolation& v : violations) {
    if (v.invariant == 1) {
      saw_invariant1 = true;
    }
  }
  EXPECT_TRUE(saw_invariant1) << PpoChecker::Report(violations);
}

}  // namespace
}  // namespace nearpm
