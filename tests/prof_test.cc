// Tests for src/prof: critical-path attribution (and its exact-sum
// invariant), per-resource duty cycles, sampled occupancy, the raw trace
// round trip, the deterministic renderers, and the Prometheus exposition
// (including the serve layer's per-shard duty gauges).
#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/runtime.h"
#include "src/prof/profile.h"
#include "src/prof/raw_trace.h"
#include "src/prof/report.h"
#include "src/serve/service.h"
#include "src/trace/recorder.h"
#include "src/workloads/workload.h"

namespace nearpm {
namespace {

// Runs `ops` operations of one workload with a recorder attached and
// returns the trace. Mirrors the bench harness loop.
std::vector<TraceEvent> TraceWorkload(const std::string& name, ExecMode mode,
                                      TraceRecorder* recorder,
                                      std::uint64_t ops = 120) {
  RuntimeOptions opts;
  opts.mode = mode;
  opts.pm_size = 64ull << 20;
  opts.retain_crash_state = false;
  Runtime rt(opts);
  rt.AttachTrace(recorder);
  PoolArena arena(0);

  auto workload = CreateWorkload(name);
  EXPECT_NE(workload, nullptr) << name;
  WorkloadConfig wc;
  wc.mechanism = Mechanism::kLogging;
  wc.initial_keys = 100;
  wc.seed = 7;
  EXPECT_TRUE(workload->Setup(rt, arena, wc).ok()) << name;
  rt.DrainDevices(0);

  Rng rng(11);
  for (std::uint64_t i = 0; i < ops; ++i) {
    EXPECT_TRUE(workload->RunOp(0, rng).ok()) << name << " op " << i;
  }
  rt.DrainDevices(0);
  return recorder->Snapshot();
}

// ---- Attribution ------------------------------------------------------------

TEST(ProfileTest, AttributionInvariantHoldsOnEveryWorkload) {
  for (const std::string& name : EvaluatedWorkloads()) {
    for (ExecMode mode : {ExecMode::kNdpSingleDevice,
                          ExecMode::kNdpMultiSwSync,
                          ExecMode::kNdpMultiDelayed}) {
      TraceRecorder recorder;
      const auto events = TraceWorkload(name, mode, &recorder, /*ops=*/60);
      const Profile profile = BuildProfile(events);
      EXPECT_GT(profile.slices.size(), 0u) << name;
      EXPECT_EQ(profile.attribution_violations, 0u)
          << name << " mode " << ExecModeName(mode);
      EXPECT_EQ(profile.incomplete_slices, 0u) << name;
      for (const RequestSlice& slice : profile.slices) {
        ASSERT_EQ(slice.PhaseSum(), slice.span_ns())
            << name << " seq " << slice.seq;
      }
    }
  }
}

TEST(ProfileTest, PhaseTotalsTileTheTotalSpan) {
  TraceRecorder recorder;
  const auto events =
      TraceWorkload("btree", ExecMode::kNdpMultiDelayed, &recorder);
  const Profile profile = BuildProfile(events);
  SimTime sum = 0;
  for (int i = 0; i < kNumAttrPhases; ++i) {
    sum += profile.phase_total_ns[i];
  }
  EXPECT_EQ(sum, profile.total_span_ns);
  EXPECT_GT(profile.total_span_ns, 0u);
  // The model always charges a command post and unit execution.
  EXPECT_GT(profile.phase_total_ns[static_cast<int>(AttrPhase::kCmdPost)],
            0u);
  EXPECT_GT(profile.phase_total_ns[static_cast<int>(AttrPhase::kUnitExec)],
            0u);
}

TEST(ProfileTest, SlowestSlicesAreSortedBySpan) {
  TraceRecorder recorder;
  const auto events =
      TraceWorkload("btree", ExecMode::kNdpMultiDelayed, &recorder);
  ProfileOptions options;
  options.top_slowest = 10;
  const Profile profile = BuildProfile(events, options);
  ASSERT_LE(profile.slowest.size(), 10u);
  ASSERT_GT(profile.slowest.size(), 0u);
  for (std::size_t i = 1; i < profile.slowest.size(); ++i) {
    EXPECT_GE(profile.slices[profile.slowest[i - 1]].span_ns(),
              profile.slices[profile.slowest[i]].span_ns());
  }
  // Nothing unranked outranks the ranked tail.
  const SimTime min_ranked = profile.slices[profile.slowest.back()].span_ns();
  std::uint64_t faster_than_tail = 0;
  for (const RequestSlice& slice : profile.slices) {
    faster_than_tail += slice.span_ns() > min_ranked;
  }
  EXPECT_LT(faster_than_tail, profile.slowest.size());
}

TEST(ProfileTest, DetectsIncompleteSlices) {
  TraceRecorder recorder;
  auto events = TraceWorkload("btree", ExecMode::kNdpMultiDelayed, &recorder);
  // Drop every kCmdPost: all request lifecycles lose their head.
  events.erase(std::remove_if(events.begin(), events.end(),
                              [](const TraceEvent& e) {
                                return e.phase == TracePhase::kCmdPost;
                              }),
               events.end());
  const Profile profile = BuildProfile(events);
  EXPECT_EQ(profile.slices.size(), 0u);
  EXPECT_GT(profile.incomplete_slices, 0u);
  EXPECT_EQ(profile.attribution_violations, 0u);
}

// ---- Utilization and occupancy ----------------------------------------------

TEST(ProfileTest, DutyCyclesStayWithinTheObservationWindow) {
  TraceRecorder recorder;
  const auto events =
      TraceWorkload("btree", ExecMode::kNdpMultiDelayed, &recorder);
  const Profile profile = BuildProfile(events);
  ASSERT_FALSE(profile.resources.empty());
  bool saw_unit = false;
  for (const ResourceUsage& usage : profile.resources) {
    EXPECT_GT(usage.window_ns, 0u) << usage.name;
    EXPECT_LE(usage.busy_ns, usage.window_ns) << usage.name;
    EXPECT_GE(usage.duty(), 0.0) << usage.name;
    EXPECT_LE(usage.duty(), 1.0) << usage.name;
    EXPECT_GT(usage.spans, 0u) << usage.name;
    if (usage.pid >= kTraceDevicePidBase &&
        usage.tid >= kTraceUnitTidBase && usage.tid != kTraceMaintenanceTid) {
      saw_unit = true;
    }
  }
  EXPECT_TRUE(saw_unit);
}

TEST(ProfileTest, OccupancySeriesCoverFifoAndInflightTable) {
  TraceRecorder recorder;
  const auto events =
      TraceWorkload("btree", ExecMode::kNdpMultiDelayed, &recorder);
  const Profile profile = BuildProfile(events);
  std::set<TracePhase> series;
  for (const OccupancySeries& occ : profile.occupancy) {
    series.insert(occ.phase);
    EXPECT_GT(occ.samples, 0u) << occ.name;
    EXPECT_GE(static_cast<double>(occ.max), occ.mean) << occ.name;
    EXPECT_GT(occ.mean, 0.0) << occ.name;
    if (occ.phase == TracePhase::kFifoDepth) {
      // The Request FIFO holds at most its capacity (32 entries).
      EXPECT_LE(occ.max, 32u) << occ.name;
    }
  }
  EXPECT_TRUE(series.count(TracePhase::kFifoDepth));
  EXPECT_TRUE(series.count(TracePhase::kInflightDepth));
}

// ---- Raw trace round trip ---------------------------------------------------

TEST(RawTraceTest, RoundTripsLosslessly) {
  TraceRecorder recorder;
  const auto events =
      TraceWorkload("btree", ExecMode::kNdpMultiDelayed, &recorder,
                    /*ops=*/30);
  std::ostringstream os;
  WriteRawTrace(events, os);

  std::istringstream is(os.str());
  std::vector<TraceEvent> parsed;
  std::string error;
  ASSERT_TRUE(ReadRawTrace(is, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].phase, events[i].phase);
    EXPECT_EQ(parsed[i].pid, events[i].pid);
    EXPECT_EQ(parsed[i].tid, events[i].tid);
    EXPECT_EQ(parsed[i].ts, events[i].ts);
    EXPECT_EQ(parsed[i].dur, events[i].dur);
    EXPECT_EQ(parsed[i].seq, events[i].seq);
    EXPECT_EQ(parsed[i].range, events[i].range);
    EXPECT_EQ(parsed[i].range2, events[i].range2);
    EXPECT_EQ(parsed[i].arg0, events[i].arg0);
    EXPECT_EQ(parsed[i].arg1, events[i].arg1);
    EXPECT_EQ(parsed[i].epoch, events[i].epoch);
    EXPECT_EQ(parsed[i].order, events[i].order);
  }
}

TEST(RawTraceTest, RejectsMalformedInput) {
  std::istringstream is("{\"phase\":\"nonsense\",\"pid\":1}\n");
  std::vector<TraceEvent> parsed;
  std::string error;
  EXPECT_FALSE(ReadRawTrace(is, &parsed, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

// ---- Renderers --------------------------------------------------------------

TEST(ReportTest, OutputsAreDeterministic) {
  TraceRecorder recorder;
  const auto events =
      TraceWorkload("btree", ExecMode::kNdpMultiDelayed, &recorder);
  const Profile a = BuildProfile(events);
  const Profile b = BuildProfile(events);
  EXPECT_EQ(RenderReport(a), RenderReport(b));
  EXPECT_EQ(RenderFolded(a), RenderFolded(b));
  EXPECT_EQ(RenderProfileJson(a, "{}"), RenderProfileJson(b, "{}"));
}

TEST(ReportTest, ReportNamesEveryAttributionPhase) {
  TraceRecorder recorder;
  const auto events =
      TraceWorkload("btree", ExecMode::kNdpMultiDelayed, &recorder);
  const std::string report = RenderReport(BuildProfile(events));
  for (int i = 0; i < kNumAttrPhases; ++i) {
    EXPECT_NE(report.find(AttrPhaseName(static_cast<AttrPhase>(i))),
              std::string::npos)
        << AttrPhaseName(static_cast<AttrPhase>(i));
  }
  EXPECT_NE(report.find("attribution violations: 0"), std::string::npos);
}

TEST(ReportTest, FoldedStacksParse) {
  TraceRecorder recorder;
  const auto events =
      TraceWorkload("btree", ExecMode::kNdpMultiDelayed, &recorder);
  const std::string folded = RenderFolded(BuildProfile(events));
  ASSERT_FALSE(folded.empty());
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    // flamegraph format: "frame;frame;... <count>".
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NE(line.find(';'), std::string::npos) << line;
    const std::string count = line.substr(space + 1);
    ASSERT_FALSE(count.empty()) << line;
    for (char c : count) {
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c))) << line;
    }
  }
  EXPECT_NE(folded.find("request;device 0;unit_exec"), std::string::npos);
}

TEST(ReportTest, ProfileJsonCarriesSchemaAndInvariantFields) {
  TraceRecorder recorder;
  const auto events =
      TraceWorkload("btree", ExecMode::kNdpMultiDelayed, &recorder);
  const std::string json =
      RenderProfileJson(BuildProfile(events), "{\"test\": 1}");
  EXPECT_NE(json.find("\"schema\": \"nearpm-profile-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"attribution_violations\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"config\": {\"test\": 1}"), std::string::npos);
  EXPECT_NE(json.find("\"phase_share\""), std::string::npos);
  EXPECT_NE(json.find("\"resources\""), std::string::npos);
  EXPECT_NE(json.find("\"occupancy\""), std::string::npos);
}

// ---- Prometheus exposition --------------------------------------------------

// Minimal Prometheus text-format checker: every non-comment line must be
// `name[{labels}] value`, every series must be preceded by a # TYPE header
// for its base name, and a base name must have exactly one type.
void ValidatePrometheus(const std::string& text,
                        std::map<std::string, std::string>* types,
                        std::map<std::string, double>* values) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream header(line.substr(7));
      std::string base, type;
      header >> base >> type;
      ASSERT_FALSE(base.empty());
      ASSERT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      ASSERT_EQ(types->count(base), 0u) << "duplicate type for " << base;
      (*types)[base] = type;
      continue;
    }
    ASSERT_NE(line[0], '#') << line;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << line;
    // The base (up to '{') must have a declared type. _bucket/_sum/_count
    // series of a histogram attach to the histogram's base.
    std::string base = series.substr(0, series.find('{'));
    if (types->count(base) == 0) {
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        const std::string s = suffix;
        if (base.size() > s.size() &&
            base.compare(base.size() - s.size(), s.size(), s) == 0) {
          const std::string trimmed = base.substr(0, base.size() - s.size());
          if (types->count(trimmed) != 0) {
            base = trimmed;
            break;
          }
        }
      }
    }
    ASSERT_EQ(types->count(base), 1u) << "no TYPE header for " << line;
    (*values)[series] = v;
  }
}

TEST(PrometheusTest, ExposesCountersGaugesAndQuantiles) {
  TraceRecorder recorder;
  (void)TraceWorkload("btree", ExecMode::kNdpMultiDelayed, &recorder);
  const std::string text = recorder.metrics().ToPrometheus();

  std::map<std::string, std::string> types;
  std::map<std::string, double> values;
  ValidatePrometheus(text, &types, &values);

  EXPECT_EQ(types["nearpm_cmd_post"], "counter");
  EXPECT_EQ(types["nearpm_fifo_depth"], "gauge");
  EXPECT_EQ(types["nearpm_inflight_depth"], "gauge");
  EXPECT_EQ(types["nearpm_cmd_post_latency_ns"], "histogram");
  EXPECT_GT(values["nearpm_cmd_post"], 0.0);
  EXPECT_GT(values["nearpm_cmd_post_latency_ns_bucket{le=\"+Inf\"}"], 0.0);
  EXPECT_GT(values["nearpm_cmd_post_latency_ns_count"], 0.0);
  EXPECT_GT(values["nearpm_cmd_post_latency_ns_sum"], 0.0);
  // The +Inf bucket must equal _count, and the cumulative buckets must be
  // monotone -- the histogram contract PromQL's histogram_quantile needs.
  EXPECT_DOUBLE_EQ(values["nearpm_cmd_post_latency_ns_bucket{le=\"+Inf\"}"],
                   values["nearpm_cmd_post_latency_ns_count"]);
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
  for (const auto& [series, value] : values) {
    const std::string want = "nearpm_cmd_post_latency_ns_bucket{le=\"";
    if (series.rfind(want, 0) == 0 &&
        series.find("+Inf") == std::string::npos) {
      buckets.emplace_back(std::strtod(series.c_str() + want.size(), nullptr),
                           value);
    }
  }
  std::sort(buckets.begin(), buckets.end());
  double prev = 0.0;
  for (const auto& [le, value] : buckets) {
    EXPECT_GE(value, prev) << "le=" << le;
    prev = value;
  }
}

// Byte-exact golden for the histogram exposition: a deterministic registry
// must serialize to exactly this text (cumulative buckets, elided empty
// tail, +Inf closing, sum/count, caller labels joined with le).
TEST(PrometheusTest, HistogramExpositionGolden) {
  MetricsRegistry registry;
  registry.Increment("ops", 3);
  Histogram& plain = registry.Latency("req");
  plain.Add(0);    // bucket 0: le="0"
  plain.Add(1);    // bucket 1: le="1"
  plain.Add(5);    // bucket 3: le="7"
  plain.Add(5);
  Histogram& labeled = registry.Latency("req{shard=\"2\"}");
  labeled.Add(2);  // bucket 2: le="3"

  const std::string expected =
      "# TYPE x_ops counter\n"
      "x_ops 3\n"
      "# TYPE x_req_latency_ns histogram\n"
      "x_req_latency_ns_bucket{le=\"0\"} 1\n"
      "x_req_latency_ns_bucket{le=\"1\"} 2\n"
      "x_req_latency_ns_bucket{le=\"3\"} 2\n"
      "x_req_latency_ns_bucket{le=\"7\"} 4\n"
      "x_req_latency_ns_bucket{le=\"+Inf\"} 4\n"
      "x_req_latency_ns_sum 11\n"
      "x_req_latency_ns_count 4\n"
      "x_req_latency_ns_bucket{shard=\"2\",le=\"0\"} 0\n"
      "x_req_latency_ns_bucket{shard=\"2\",le=\"1\"} 0\n"
      "x_req_latency_ns_bucket{shard=\"2\",le=\"3\"} 1\n"
      "x_req_latency_ns_bucket{shard=\"2\",le=\"+Inf\"} 1\n"
      "x_req_latency_ns_sum{shard=\"2\"} 2\n"
      "x_req_latency_ns_count{shard=\"2\"} 1\n";
  EXPECT_EQ(registry.ToPrometheus("x"), expected);
}

TEST(PrometheusTest, GaugePrimitiveRoundTrips) {
  MetricsRegistry registry;
  registry.SetGauge("depth", 3.0);
  EXPECT_DOUBLE_EQ(registry.GaugeRef("depth").value(), 3.0);
  registry.SetGauge("depth", 1.5);
  EXPECT_DOUBLE_EQ(registry.GaugeRef("depth").value(), 1.5);
  registry.SetGauge("ratio{kind=\"a\"}", 0.25);
  const std::string text = registry.ToPrometheus("x");
  EXPECT_NE(text.find("# TYPE x_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("x_depth 1.5"), std::string::npos);
  EXPECT_NE(text.find("x_ratio{kind=\"a\"} 0.25"), std::string::npos);
}

// ---- Serve integration ------------------------------------------------------

TEST(ServeProfilingTest, ExportsPerShardPerUnitDutyGauges) {
  serve::ServeOptions so;
  so.shards = 2;
  so.workers_per_shard = 2;
  so.queue_capacity = 64;
  auto svc = serve::KvService::Create(so);
  ASSERT_TRUE(svc.ok());

  for (std::uint64_t i = 0; i < 120; ++i) {
    serve::ServeRequest req;
    req.kind = serve::RequestKind::kPut;
    req.key = i;
    req.value = std::vector<std::uint8_t>(8, 3);
    if (!(*svc)->Submit(std::move(req)).ok()) {
      (*svc)->Pump();
      --i;
    }
  }
  (*svc)->Pump();
  (*svc)->ExportResourceMetrics();

  const std::string text = (*svc)->metrics().ToPrometheus();
  std::map<std::string, std::string> types;
  std::map<std::string, double> values;
  ValidatePrometheus(text, &types, &values);
  EXPECT_EQ(types["nearpm_serve_duty"], "gauge");

  // Every shard exposes a duty cycle for every NearPM unit, bounded by 1.
  for (int shard = 0; shard < so.shards; ++shard) {
    bool saw_unit = false;
    for (const auto& [series, value] : values) {
      const std::string want = "nearpm_serve_duty{shard=\"" +
                               std::to_string(shard) + "\",resource=\"";
      if (series.rfind(want, 0) == 0) {
        EXPECT_GE(value, 0.0) << series;
        EXPECT_LE(value, 1.0) << series;
        if (series.find("/ unit ") != std::string::npos) {
          saw_unit = true;
        }
      }
    }
    EXPECT_TRUE(saw_unit) << "shard " << shard;
  }
  // Queue occupancy rides along as serve_occupancy_* gauges.
  bool saw_queue_series = false;
  for (const auto& [series, value] : values) {
    (void)value;
    if (series.rfind("nearpm_serve_occupancy_mean{", 0) == 0 &&
        series.find("serve_queue_depth") != std::string::npos) {
      saw_queue_series = true;
    }
  }
  EXPECT_TRUE(saw_queue_series);
}

}  // namespace
}  // namespace nearpm
