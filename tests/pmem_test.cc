#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/pmem/interleave.h"
#include "src/pmem/pm_space.h"

namespace nearpm {
namespace {

std::vector<std::uint8_t> Bytes(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (int v : vals) {
    out.push_back(static_cast<std::uint8_t>(v));
  }
  return out;
}

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i);
  }
  return out;
}

// ---- InterleaveMap ----------------------------------------------------------

TEST(InterleaveTest, RoundRobinStripes) {
  InterleaveMap il(2, 4096);
  EXPECT_EQ(il.DeviceOf(0), 0u);
  EXPECT_EQ(il.DeviceOf(4095), 0u);
  EXPECT_EQ(il.DeviceOf(4096), 1u);
  EXPECT_EQ(il.DeviceOf(8192), 0u);
}

TEST(InterleaveTest, LocalOffsets) {
  InterleaveMap il(2, 4096);
  EXPECT_EQ(il.LocalOffsetOf(0), 0u);
  EXPECT_EQ(il.LocalOffsetOf(100), 100u);
  EXPECT_EQ(il.LocalOffsetOf(4096), 0u);     // first stripe on device 1
  EXPECT_EQ(il.LocalOffsetOf(8192), 4096u);  // second stripe on device 0
  EXPECT_EQ(il.LocalOffsetOf(8200), 4104u);
}

TEST(InterleaveTest, SplitWithinOneStripe) {
  InterleaveMap il(2, 4096);
  const auto slices = il.Split({100, 200});
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].device, 0u);
  EXPECT_EQ(slices[0].global, (AddrRange{100, 200}));
}

TEST(InterleaveTest, SplitAcrossStripes) {
  InterleaveMap il(2, 4096);
  const auto slices = il.Split({4000, 8300});
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0].device, 0u);
  EXPECT_EQ(slices[0].global, (AddrRange{4000, 4096}));
  EXPECT_EQ(slices[1].device, 1u);
  EXPECT_EQ(slices[1].global, (AddrRange{4096, 8192}));
  EXPECT_EQ(slices[2].device, 0u);
  EXPECT_EQ(slices[2].global, (AddrRange{8192, 8300}));
}

TEST(InterleaveTest, SpansDetection) {
  InterleaveMap il(2, 4096);
  EXPECT_FALSE(il.Spans({0, 4096}));
  EXPECT_TRUE(il.Spans({0, 4097}));
  EXPECT_TRUE(il.Spans({4000, 4200}));
  InterleaveMap single(1, 4096);
  EXPECT_FALSE(single.Spans({0, 1 << 20}));
}

TEST(InterleaveTest, SplitCoversRangeExactly) {
  InterleaveMap il(3, 256);
  const AddrRange range{100, 5000};
  std::uint64_t covered = 0;
  PmAddr expect_next = range.begin;
  for (const auto& s : il.Split(range)) {
    EXPECT_EQ(s.global.begin, expect_next);
    expect_next = s.global.end;
    covered += s.global.size();
    EXPECT_EQ(s.device, il.DeviceOf(s.global.begin));
  }
  EXPECT_EQ(covered, range.size());
  EXPECT_EQ(expect_next, range.end);
}

// ---- PmSpace: CPU store-buffer semantics ------------------------------------

PmSpaceOptions SmallSpace() {
  PmSpaceOptions o;
  o.size = 1 << 20;
  o.num_devices = 2;
  return o;
}

TEST(PmSpaceTest, ReadsSeeWrites) {
  PmSpace space(SmallSpace());
  const auto data = Bytes({1, 2, 3, 4});
  space.CpuWrite(100, data);
  std::vector<std::uint8_t> out(4);
  space.CpuRead(100, out);
  EXPECT_EQ(out, data);
}

TEST(PmSpaceTest, UnpersistedWriteCanBeLost) {
  PmSpaceOptions o = SmallSpace();
  o.pending_line_survival = 0.0;  // pending lines always lost
  PmSpace space(o);
  space.CpuWrite(128, Bytes({42}));
  Rng rng(1);
  const CrashReport report = space.Crash(rng, 0);
  EXPECT_EQ(report.cpu_lines_dropped, 1u);
  std::vector<std::uint8_t> out(1);
  space.CpuRead(128, out);
  EXPECT_EQ(out[0], 0);
}

TEST(PmSpaceTest, PersistedWriteSurvives) {
  PmSpaceOptions o = SmallSpace();
  o.pending_line_survival = 0.0;
  PmSpace space(o);
  space.CpuWrite(128, Bytes({42}));
  space.CpuPersist(128, 1);
  Rng rng(1);
  space.Crash(rng, 0);
  std::vector<std::uint8_t> out(1);
  space.CpuRead(128, out);
  EXPECT_EQ(out[0], 42);
}

TEST(PmSpaceTest, PendingLineSurvivalIsPerLine) {
  PmSpaceOptions o = SmallSpace();
  o.pending_line_survival = 0.5;
  PmSpace space(o);
  for (int i = 0; i < 64; ++i) {
    space.CpuWrite(static_cast<PmAddr>(i) * 64, Bytes({7}));
  }
  Rng rng(3);
  const CrashReport report = space.Crash(rng, 0);
  EXPECT_EQ(report.cpu_lines_dropped + report.cpu_lines_survived, 64u);
  EXPECT_GT(report.cpu_lines_dropped, 10u);
  EXPECT_GT(report.cpu_lines_survived, 10u);
}

TEST(PmSpaceTest, RepeatedWriteKeepsOldestPreImage) {
  PmSpaceOptions o = SmallSpace();
  o.pending_line_survival = 0.0;
  PmSpace space(o);
  space.CpuWrite(0, Bytes({1}));
  space.CpuPersist(0, 1);
  space.CpuWrite(0, Bytes({2}));
  space.CpuWrite(0, Bytes({3}));  // second write to same pending line
  Rng rng(1);
  space.Crash(rng, 0);
  std::vector<std::uint8_t> out(1);
  space.CpuRead(0, out);
  EXPECT_EQ(out[0], 1);  // rolls back to the persisted value, not 2
}

TEST(PmSpaceTest, PendingLinesInCountsLines) {
  PmSpace space(SmallSpace());
  space.CpuWrite(0, Pattern(200, 0));  // touches lines 0..3
  EXPECT_EQ(space.PendingLinesIn({0, 200}), 4u);
  space.CpuPersist(0, 64);
  EXPECT_EQ(space.PendingLinesIn({0, 200}), 3u);
  EXPECT_EQ(space.PendingLinesIn({0, 64}), 0u);
}

// ---- PmSpace: NDP requests --------------------------------------------------

TEST(PmSpaceTest, NdpWriteIsVisibleAndDurableWhenCompleted) {
  PmSpace space(SmallSpace());
  space.BeginNdpRequest(0, 1, 100, 200);
  space.NdpWrite(0, 1, 0, Pattern(128, 5));
  std::vector<std::uint8_t> out(128);
  space.NdpRead(0, out);
  EXPECT_EQ(out, Pattern(128, 5));
  Rng rng(1);
  // Crash after completion: everything stays.
  const CrashReport report = space.Crash(rng, 500);
  EXPECT_EQ(report.requests_durable, 1u);
  space.CpuRead(0, out);
  EXPECT_EQ(out, Pattern(128, 5));
}

TEST(PmSpaceTest, NdpRequestNotStartedIsDropped) {
  PmSpace space(SmallSpace());
  space.CpuWrite(0, Pattern(128, 9));
  space.CpuPersist(0, 128);
  space.BeginNdpRequest(0, 1, 1000, 2000);
  space.NdpWrite(0, 1, 0, Pattern(128, 5));
  Rng rng(1);
  const CrashReport report = space.Crash(rng, 500);  // before start
  EXPECT_EQ(report.requests_dropped, 1u);
  std::vector<std::uint8_t> out(128);
  space.CpuRead(0, out);
  EXPECT_EQ(out, Pattern(128, 9));  // pre-image restored
}

TEST(PmSpaceTest, NdpRequestMidFlightIsTruncatedToPrefix) {
  PmSpace space(SmallSpace());
  space.BeginNdpRequest(0, 1, 0, 1000);
  space.NdpWrite(0, 1, 0, Pattern(640, 1));  // 10 lines
  Rng rng(1);
  const CrashReport report = space.Crash(rng, 500);  // half way
  EXPECT_EQ(report.requests_truncated, 1u);
  std::vector<std::uint8_t> out(640);
  space.CpuRead(0, out);
  // Roughly the first half of the lines survived, and it is a strict prefix.
  std::size_t persisted_lines = 0;
  for (std::size_t line = 0; line < 10; ++line) {
    if (out[line * 64] != 0) {
      EXPECT_EQ(persisted_lines, line) << "non-prefix truncation";
      ++persisted_lines;
    }
  }
  EXPECT_EQ(persisted_lines, 5u);
}

TEST(PmSpaceTest, RetiredRequestAlwaysDurable) {
  PmSpace space(SmallSpace());
  space.BeginNdpRequest(0, 1, 1000, 2000);
  space.NdpWrite(0, 1, 0, Pattern(64, 5));
  space.RetireRequest(0, 1);
  Rng rng(1);
  const CrashReport report = space.Crash(rng, 0);  // "before" it even started
  EXPECT_EQ(report.requests_dropped, 0u);
  EXPECT_EQ(report.requests_truncated, 0u);
  std::vector<std::uint8_t> out(64);
  space.CpuRead(0, out);
  EXPECT_EQ(out, Pattern(64, 5));
}

TEST(PmSpaceTest, CpuObservationRetiresRequest) {
  PmSpace space(SmallSpace());
  space.BeginNdpRequest(0, 1, 1000, 2000);
  space.NdpWrite(0, 1, 0, Pattern(64, 5));
  // CPU reads the line the request wrote: architecturally ordered after.
  std::vector<std::uint8_t> out(64);
  space.CpuRead(0, out);
  Rng rng(1);
  const CrashReport report = space.Crash(rng, 0);
  EXPECT_EQ(report.requests_dropped, 0u);
  space.CpuRead(0, out);
  EXPECT_EQ(out, Pattern(64, 5));  // the write survived the crash
}

TEST(PmSpaceTest, ObservationDisabledInAblationMode) {
  PmSpaceOptions o = SmallSpace();
  o.enforce_observation = false;
  PmSpace space(o);
  space.BeginNdpRequest(0, 1, 1000, 2000);
  space.NdpWrite(0, 1, 0, Pattern(64, 5));
  std::vector<std::uint8_t> out(64);
  space.CpuRead(0, out);
  EXPECT_EQ(out, Pattern(64, 5));  // value visible...
  Rng rng(1);
  const CrashReport report = space.Crash(rng, 0);
  EXPECT_EQ(report.requests_dropped, 1u);  // ...but lost at the crash
}

TEST(PmSpaceTest, DependentRequestForcesPredecessorDurable) {
  PmSpace space(SmallSpace());
  // Request 1 writes a line; request 2 overwrites it later. If 2 executed,
  // 1 must have executed first (dispatcher serialization).
  space.BeginNdpRequest(0, 1, 0, 400);
  space.NdpWrite(0, 1, 0, Pattern(64, 5));
  space.BeginNdpRequest(0, 2, 400, 450);
  space.NdpWrite(0, 2, 0, Pattern(64, 9));
  Rng rng(1);
  const CrashReport report = space.Crash(rng, 500);
  EXPECT_EQ(report.requests_durable, 2u);
  std::vector<std::uint8_t> out(64);
  space.CpuRead(0, out);
  EXPECT_EQ(out, Pattern(64, 9));
}

TEST(PmSpaceTest, SyncMarkerForcesPreSyncDurability) {
  PmSpace space(SmallSpace());
  // Device 0 finishes its half early; device 1 is slow. A sync separates the
  // slow request from a later fast one on device 0. The late request
  // completed, so everything before the sync must be durable everywhere.
  space.BeginNdpRequest(0, 1, 0, 100);
  space.NdpWrite(0, 1, 0, Pattern(64, 1));
  space.BeginNdpRequest(1, 2, 0, 10000);  // slow: would not finish by crash
  space.NdpWrite(1, 2, 4096, Pattern(64, 2));
  space.SyncMarker(1);
  space.BeginNdpRequest(0, 3, 150, 200);
  space.NdpWrite(0, 3, 64, Pattern(64, 3));
  Rng rng(1);
  const CrashReport report = space.Crash(rng, 500);
  EXPECT_EQ(report.forced_by_sync, 1u);  // the slow request on device 1
  EXPECT_EQ(report.frontier_sync, 1u);
  std::vector<std::uint8_t> out(64);
  space.CpuRead(4096, out);
  EXPECT_EQ(out, Pattern(64, 2));
}

TEST(PmSpaceTest, RetireThroughSyncReleasesRecords) {
  PmSpace space(SmallSpace());
  space.BeginNdpRequest(0, 1, 0, 100);
  space.NdpWrite(0, 1, 0, Pattern(64, 1));
  space.BeginNdpRequest(1, 2, 0, 100);
  space.NdpWrite(1, 2, 4096, Pattern(64, 2));
  space.SyncMarker(1);
  EXPECT_EQ(space.live_request_count(0), 1u);
  EXPECT_EQ(space.live_request_count(1), 1u);
  space.RetireThroughSync(1);
  EXPECT_EQ(space.live_request_count(0), 0u);
  EXPECT_EQ(space.live_request_count(1), 0u);
}

TEST(PmSpaceTest, QuiesceMakesEverythingDurable) {
  PmSpaceOptions o = SmallSpace();
  o.pending_line_survival = 0.0;
  PmSpace space(o);
  space.CpuWrite(0, Bytes({1}));
  space.BeginNdpRequest(0, 1, 1000, 2000);
  space.NdpWrite(0, 1, 64, Bytes({2}));
  space.Quiesce();
  Rng rng(1);
  space.Crash(rng, 0);
  std::vector<std::uint8_t> out(2);
  space.CpuRead(0, {out.data(), 1});
  space.CpuRead(64, {out.data() + 1, 1});
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
}

TEST(PmSpaceTest, CrashReportsOutcomes) {
  PmSpace space(SmallSpace());
  space.BeginNdpRequest(0, 7, 0, 100);
  space.NdpWrite(0, 7, 0, Pattern(64, 1));
  space.BeginNdpRequest(0, 8, 1000, 1100);
  space.NdpWrite(0, 8, 64, Pattern(64, 2));
  Rng rng(1);
  const CrashReport report = space.Crash(rng, 500);
  ASSERT_EQ(report.outcomes.size(), 2u);
  EXPECT_EQ(report.outcomes[0].at(7), CrashOutcome::kDurable);
  EXPECT_EQ(report.outcomes[0].at(8), CrashOutcome::kDropped);
}

TEST(PmSpaceTest, FastPathWithoutCrashState) {
  PmSpaceOptions o = SmallSpace();
  o.retain_crash_state = false;
  PmSpace space(o);
  space.CpuWrite(0, Bytes({1, 2}));
  space.NdpWrite(0, 1, 64, Bytes({3}));
  std::vector<std::uint8_t> out(1);
  space.CpuRead(64, out);
  EXPECT_EQ(out[0], 3);
  EXPECT_EQ(space.pending_line_count(), 0u);
}

}  // namespace
}  // namespace nearpm
