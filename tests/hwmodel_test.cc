// HwConfig schema tests (parse/validate/round-trip) and UnitPipeline timing
// tests: the default geometry must collapse to the seed's UnitPool
// scheduling, and the pipelined geometry must chain stages and bound the
// in-flight population the way DESIGN.md section 14 documents.
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "src/hwmodel/hw_config.h"
#include "src/ndp/pipeline.h"
#include "src/sim/timeline.h"

namespace nearpm {
namespace {

using hwmodel::HwConfig;
using hwmodel::LoadHwConfigFile;
using hwmodel::ParseHwConfig;
using hwmodel::WriteHwConfig;

// ---------------------------------------------------------------------------
// Defaults

TEST(HwConfigTest, DefaultCostIsByteIdenticalToSeedCostModel) {
  const HwConfig hw;
  const CostModel seed;
  EXPECT_EQ(0, std::memcmp(&hw.cost, &seed, sizeof(CostModel)));
  EXPECT_EQ(4, hw.units_per_device);
  EXPECT_EQ(32u, hw.fifo_depth);
  EXPECT_FALSE(hw.pipeline.enabled());
  EXPECT_TRUE(hw.Validate().ok());
}

TEST(HwConfigTest, EmptyObjectParsesToDefaults) {
  const auto hw = ParseHwConfig("{}");
  ASSERT_TRUE(hw.ok()) << hw.status().ToString();
  EXPECT_EQ(WriteHwConfig(HwConfig{}), WriteHwConfig(*hw));
}

TEST(HwConfigTest, CostFieldTableCoversEveryConstant) {
  std::size_t count = 0;
  const auto* fields = hwmodel::CostFields(&count);
  ASSERT_NE(nullptr, fields);
  // Every table row resolves by name, and writing through the member
  // pointer touches distinct storage (no aliased rows).
  HwConfig hw;
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(fields[i].member, hwmodel::FindCostField(fields[i].name));
    hw.cost.*(fields[i].member) = 1000.0 + static_cast<double>(i);
  }
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(1000.0 + static_cast<double>(i), hw.cost.*(fields[i].member))
        << fields[i].name;
  }
  EXPECT_EQ(nullptr, hwmodel::FindCostField("no_such_constant"));
}

// ---------------------------------------------------------------------------
// Round-trip

TEST(HwConfigTest, WriteParseRoundTripsNonTrivialConfig) {
  HwConfig hw;
  hw.name = "round-trip";
  hw.units_per_device = 7;
  hw.fifo_depth = 96;
  hw.pipeline.dispatch_ns = 12.5;
  hw.pipeline.writeback_ns = 37.25;
  hw.pipeline.lsq_depth = 6;
  hw.cost.ndp_dma_ns_per_byte = 0.125;
  hw.cost.cpu_pm_read_ns = 391.0;
  ASSERT_TRUE(hw.Validate().ok());

  const std::string text = WriteHwConfig(hw);
  const auto parsed = ParseHwConfig(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(hw.name, parsed->name);
  EXPECT_EQ(hw.units_per_device, parsed->units_per_device);
  EXPECT_EQ(hw.fifo_depth, parsed->fifo_depth);
  EXPECT_EQ(hw.pipeline.dispatch_ns, parsed->pipeline.dispatch_ns);
  EXPECT_EQ(hw.pipeline.writeback_ns, parsed->pipeline.writeback_ns);
  EXPECT_EQ(hw.pipeline.lsq_depth, parsed->pipeline.lsq_depth);
  EXPECT_EQ(0, std::memcmp(&hw.cost, &parsed->cost, sizeof(CostModel)));
  EXPECT_EQ(text, WriteHwConfig(*parsed));
}

// ---------------------------------------------------------------------------
// Schema rejection -- a sweep must never silently run a geometry the author
// did not write.

TEST(HwConfigTest, RejectsMalformedJson) {
  EXPECT_FALSE(ParseHwConfig("").ok());
  EXPECT_FALSE(ParseHwConfig("{").ok());
  EXPECT_FALSE(ParseHwConfig("{\"units_per_device\": }").ok());
  EXPECT_FALSE(ParseHwConfig("{\"units_per_device\" 4}").ok());
  EXPECT_FALSE(ParseHwConfig("{\"units_per_device\": 4} trailing").ok());
  EXPECT_FALSE(ParseHwConfig("[1, 2]").ok());
  EXPECT_FALSE(ParseHwConfig("{\"fifo_depth\": [8]}").ok());
  EXPECT_FALSE(ParseHwConfig("{\"name\": btree}").ok());
}

TEST(HwConfigTest, RejectsUnknownKeys) {
  EXPECT_FALSE(ParseHwConfig("{\"unit_count\": 4}").ok());
  EXPECT_FALSE(ParseHwConfig("{\"pipeline\": {\"depth\": 3}}").ok());
  EXPECT_FALSE(ParseHwConfig("{\"bandwidth\": {\"pcie_gbps\": 16}}").ok());
  EXPECT_FALSE(ParseHwConfig("{\"cost\": {\"warp_speed_ns\": 1}}").ok());
}

TEST(HwConfigTest, RejectsDuplicateKeys) {
  EXPECT_FALSE(
      ParseHwConfig("{\"units_per_device\": 4, \"units_per_device\": 8}")
          .ok());
  EXPECT_FALSE(
      ParseHwConfig(
          "{\"pipeline\": {\"lsq_depth\": 2, \"lsq_depth\": 4}}")
          .ok());
}

TEST(HwConfigTest, RejectsWrongSchemaVersion) {
  EXPECT_FALSE(ParseHwConfig("{\"schema_version\": 0}").ok());
  EXPECT_FALSE(ParseHwConfig("{\"schema_version\": 2}").ok());
  EXPECT_TRUE(ParseHwConfig("{\"schema_version\": 1}").ok());
}

TEST(HwConfigTest, RejectsOutOfRangeValues) {
  EXPECT_FALSE(ParseHwConfig("{\"units_per_device\": 0}").ok());
  EXPECT_FALSE(ParseHwConfig("{\"units_per_device\": 65}").ok());
  EXPECT_FALSE(ParseHwConfig("{\"fifo_depth\": 0}").ok());
  EXPECT_FALSE(ParseHwConfig("{\"fifo_depth\": 5000}").ok());
  EXPECT_FALSE(ParseHwConfig("{\"pipeline\": {\"lsq_depth\": -1}}").ok());
  EXPECT_FALSE(ParseHwConfig("{\"pipeline\": {\"lsq_depth\": 2000}}").ok());
  EXPECT_FALSE(
      ParseHwConfig("{\"pipeline\": {\"dispatch_ns\": -5}}").ok());
  EXPECT_FALSE(ParseHwConfig("{\"bandwidth\": {\"axi_gbps\": 0}}").ok());
  EXPECT_FALSE(ParseHwConfig("{\"cost\": {\"cmd_post_ns\": -1}}").ok());
}

TEST(HwConfigTest, ValidateCatchesHandMutatedConfigs) {
  HwConfig hw;
  hw.units_per_device = 0;  // the sweep mutates parsed configs in place
  EXPECT_FALSE(hw.Validate().ok());
  hw.units_per_device = 4;
  hw.cost.ndp_dma_ns_per_byte = 0.0;  // rate constants must stay > 0
  EXPECT_FALSE(hw.Validate().ok());
}

// ---------------------------------------------------------------------------
// Aliases and section precedence

TEST(HwConfigTest, BandwidthAliasSetsRateConstant) {
  const auto hw = ParseHwConfig("{\"bandwidth\": {\"axi_gbps\": 8}}");
  ASSERT_TRUE(hw.ok()) << hw.status().ToString();
  EXPECT_DOUBLE_EQ(0.125, hw->cost.ndp_dma_ns_per_byte);
  EXPECT_DOUBLE_EQ(8.0, hw->AxiGbps());
}

TEST(HwConfigTest, CostSectionWinsOverAlias) {
  const auto hw = ParseHwConfig(
      "{\"bandwidth\": {\"axi_gbps\": 8},"
      " \"cost\": {\"ndp_dma_ns_per_byte\": 0.5}}");
  ASSERT_TRUE(hw.ok()) << hw.status().ToString();
  EXPECT_DOUBLE_EQ(0.5, hw->cost.ndp_dma_ns_per_byte);
}

// ---------------------------------------------------------------------------
// Committed sample geometries

TEST(HwConfigTest, CommittedConfigsParse) {
  const std::string dir = NEARPM_CONFIG_DIR;
  for (const char* name :
       {"calibrated-default.json", "wide-pipelined.json",
        "lean-device.json"}) {
    const auto hw = LoadHwConfigFile(dir + "/" + name);
    EXPECT_TRUE(hw.ok()) << name << ": " << hw.status().ToString();
  }
}

TEST(HwConfigTest, CalibratedDefaultConfigEqualsDefaults) {
  const auto hw =
      LoadHwConfigFile(std::string(NEARPM_CONFIG_DIR) +
                       "/calibrated-default.json");
  ASSERT_TRUE(hw.ok()) << hw.status().ToString();
  const HwConfig defaults;
  EXPECT_EQ(WriteHwConfig(defaults), WriteHwConfig(*hw));
  EXPECT_EQ(0, std::memcmp(&hw->cost, &defaults.cost, sizeof(CostModel)));
}

TEST(HwConfigTest, LoadReportsMissingFile) {
  EXPECT_FALSE(LoadHwConfigFile("/nonexistent/geometry.json").ok());
}

// ---------------------------------------------------------------------------
// AreaProxy

TEST(HwConfigTest, AreaProxyIsMonotoneInSweepAxes) {
  HwConfig base;
  HwConfig more_units = base;
  more_units.units_per_device = 8;
  HwConfig deeper_fifo = base;
  deeper_fifo.fifo_depth = 64;
  HwConfig faster_axi = base;
  faster_axi.cost.ndp_dma_ns_per_byte = base.cost.ndp_dma_ns_per_byte / 2;
  EXPECT_GT(more_units.AreaProxy(), base.AreaProxy());
  EXPECT_GT(deeper_fifo.AreaProxy(), base.AreaProxy());
  EXPECT_GT(faster_axi.AreaProxy(), base.AreaProxy());
  // A bounded LSQ is cheaper than the idealized unbounded unit.
  HwConfig bounded = base;
  bounded.pipeline.lsq_depth = 4;
  EXPECT_LT(bounded.AreaProxy(), base.AreaProxy());
}

// ---------------------------------------------------------------------------
// UnitPipeline scheduling

TEST(UnitPipelineTest, DisabledPipelineMatchesSeedUnitPool) {
  // Same request stream through UnitPipeline (default geometry) and the
  // seed's UnitPool: unit choice and completion must agree exactly.
  const HwConfig hw;
  UnitPipeline pipe(&hw);
  UnitPool pool(hw.units_per_device);
  ASSERT_FALSE(pipe.pipelined());
  const struct {
    SimTime earliest;
    double work_ns;
  } reqs[] = {{0, 100}, {10, 50}, {10, 200}, {60, 10},
              {70, 10}, {500, 1}, {500, 1},  {501, 300}};
  for (const auto& r : reqs) {
    int pool_unit = -1;
    const SimTime pool_done = pool.Schedule(r.earliest, r.work_ns, &pool_unit);
    const PipelineSchedule s = pipe.Schedule(r.earliest, r.work_ns);
    EXPECT_EQ(pool_unit, s.unit);
    EXPECT_EQ(pool_done, s.wb_end);
    // Degenerate stages: no latch time anywhere.
    EXPECT_EQ(s.dispatch_start, s.dispatch_end);
    EXPECT_EQ(s.dispatch_end, s.exec_start);
    EXPECT_EQ(s.exec_end, s.wb_start);
    EXPECT_EQ(s.wb_start, s.wb_end);
    EXPECT_FALSE(s.lsq_stalled);
  }
  EXPECT_EQ(pool.AllIdleAt(), pipe.AllIdleAt());
}

TEST(UnitPipelineTest, StagesChainInOrder) {
  HwConfig hw;
  hw.units_per_device = 1;
  hw.pipeline.dispatch_ns = 10;
  hw.pipeline.writeback_ns = 20;
  UnitPipeline pipe(&hw);
  ASSERT_TRUE(pipe.pipelined());
  const PipelineSchedule s = pipe.Schedule(100, 50);
  EXPECT_EQ(100u, s.dispatch_start);
  EXPECT_EQ(110u, s.dispatch_end);
  EXPECT_EQ(110u, s.exec_start);
  EXPECT_EQ(160u, s.exec_end);
  EXPECT_EQ(160u, s.wb_start);
  EXPECT_EQ(180u, s.wb_end);
  EXPECT_FALSE(s.lsq_stalled);
  EXPECT_EQ(1u, s.lsq_occupancy);
}

TEST(UnitPipelineTest, BackToBackRequestsOverlapStages) {
  HwConfig hw;
  hw.units_per_device = 1;
  hw.pipeline.dispatch_ns = 10;
  hw.pipeline.writeback_ns = 10;
  UnitPipeline pipe(&hw);
  const PipelineSchedule a = pipe.Schedule(0, 100);
  const PipelineSchedule b = pipe.Schedule(0, 100);
  // b's dispatch starts as soon as the dispatch stage frees (10), well
  // before a leaves the unit (120): classic stage-level overlap.
  EXPECT_EQ(10u, b.dispatch_start);
  EXPECT_LT(b.dispatch_start, a.wb_end);
  // The shared execute stage serializes the actual work.
  EXPECT_EQ(a.exec_end, b.exec_start);
  EXPECT_EQ(b.exec_end + 10, b.wb_end);
}

TEST(UnitPipelineTest, FullLsqStallsDispatchUntilOldestDrains) {
  HwConfig hw;
  hw.units_per_device = 1;
  hw.pipeline.dispatch_ns = 1;
  hw.pipeline.writeback_ns = 1;
  hw.pipeline.lsq_depth = 2;
  UnitPipeline pipe(&hw);
  const PipelineSchedule a = pipe.Schedule(0, 100);
  const PipelineSchedule b = pipe.Schedule(0, 100);
  EXPECT_FALSE(a.lsq_stalled);
  EXPECT_FALSE(b.lsq_stalled);
  // Two requests in flight: the third may not dispatch until a completes
  // writeback.
  const PipelineSchedule c = pipe.Schedule(0, 100);
  EXPECT_TRUE(c.lsq_stalled);
  EXPECT_GE(c.dispatch_start, a.wb_end);
  EXPECT_LE(c.lsq_occupancy, 2u);
}

TEST(UnitPipelineTest, LsqAdmitsWithoutStallOnceDrained) {
  HwConfig hw;
  hw.units_per_device = 1;
  hw.pipeline.dispatch_ns = 1;
  hw.pipeline.writeback_ns = 1;
  hw.pipeline.lsq_depth = 2;
  UnitPipeline pipe(&hw);
  const PipelineSchedule a = pipe.Schedule(0, 10);
  (void)pipe.Schedule(0, 10);
  // Arrives long after both earlier requests retired: no stall.
  const PipelineSchedule c = pipe.Schedule(10000, 10);
  EXPECT_FALSE(c.lsq_stalled);
  EXPECT_EQ(10000u, c.dispatch_start);
  EXPECT_GT(c.dispatch_start, a.wb_end);
}

TEST(UnitPipelineTest, ResetRestoresIdleUnits) {
  HwConfig hw;
  hw.units_per_device = 2;
  hw.pipeline.dispatch_ns = 5;
  hw.pipeline.writeback_ns = 5;
  hw.pipeline.lsq_depth = 1;
  UnitPipeline pipe(&hw);
  (void)pipe.Schedule(0, 1000);
  (void)pipe.Schedule(0, 1000);
  pipe.Reset();
  EXPECT_EQ(0u, pipe.AllIdleAt());
  const PipelineSchedule s = pipe.Schedule(0, 10);
  EXPECT_EQ(0, s.unit);
  EXPECT_EQ(0u, s.dispatch_start);
  EXPECT_FALSE(s.lsq_stalled);
}

}  // namespace
}  // namespace nearpm
