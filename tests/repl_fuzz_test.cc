// Tests for src/repl/repl_fuzzer: single-case oracles, the systematic
// crash-subset sweep for both replication protocols, the fuzzer's teeth
// against the intent-redo and redo-persist ablations, and corpus round-trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/fuzz/corpus.h"
#include "src/repl/repl_fuzzer.h"

namespace nearpm {
namespace repl {
namespace {

ReplFuzzConfig SmallConfig(ReplProtocol protocol) {
  ReplFuzzConfig config;
  config.groups = 2;
  config.replicas = 2;
  config.protocol = protocol;
  return config;
}

ReplFuzzCase SmallCase() {
  ReplFuzzCase c;
  c.seed = 7;
  c.warmup_ops = 4;
  c.txn_pairs = 3;
  return c;
}

TEST(ReplFuzzerTest, CleanRunPassesEveryOracle) {
  ReplFuzzer fuzzer(SmallConfig(ReplProtocol::kPrimaryBackup));
  ReplFuzzCase c = SmallCase();
  c.phase = ReplStopPhase::kNone;
  const ReplCaseResult result = fuzzer.Run(c);
  EXPECT_TRUE(result.ok()) << ReplFailureKindName(result.failure) << ": "
                           << result.detail;
}

TEST(ReplFuzzerTest, CoordinatorCrashAfterIntentRecovers) {
  ReplFuzzer fuzzer(SmallConfig(ReplProtocol::kPrimaryBackup));
  ReplFuzzCase c = SmallCase();
  c.phase = ReplStopPhase::kAfterIntent;
  c.crash_mask = ~0ull;  // whole cluster
  const ReplCaseResult result = fuzzer.Run(c);
  EXPECT_TRUE(result.ok()) << ReplFailureKindName(result.failure) << ": "
                           << result.detail;
}

TEST(ReplFuzzerTest, PrimaryOnlyCrashDrivesFailover) {
  // Crash only node 0 (group 0's primary): the sweep's failover leg promotes
  // the backup, which must serve every acked key.
  ReplFuzzer fuzzer(SmallConfig(ReplProtocol::kPrimaryBackup));
  ReplFuzzCase c = SmallCase();
  c.phase = ReplStopPhase::kAfterReplicate;
  c.crash_mask = 0b0001;
  const ReplCaseResult result = fuzzer.Run(c);
  EXPECT_TRUE(result.ok()) << ReplFailureKindName(result.failure) << ": "
                           << result.detail;
}

TEST(ReplFuzzerTest, ParticipantCountMatchesSchedule) {
  ReplFuzzer fuzzer(SmallConfig(ReplProtocol::kPrimaryBackup));
  ReplFuzzCase c = SmallCase();
  const int k = fuzzer.ParticipantCount(c);
  EXPECT_GE(k, 1);
  EXPECT_LE(k, 2);
}

class ReplSweepTest : public ::testing::TestWithParam<ReplProtocol> {};

TEST_P(ReplSweepTest, SystematicCrashSubsetSweepIsClean) {
  // Every stop phase x every targetable ordinal x every non-empty node
  // subset x {all-drop, all-survive}: zero lost-committed, zero torn, zero
  // divergent replicas.
  ReplFuzzer fuzzer(SmallConfig(GetParam()));
  std::vector<ReplFuzzFailure> failures;
  const fuzz::SweepStats stats = fuzzer.Systematic(/*seed=*/11, &failures);
  EXPECT_GT(stats.cases, 200u);
  EXPECT_EQ(stats.failures, 0u);
  for (std::size_t i = 0; i < failures.size() && i < 5; ++i) {
    ADD_FAILURE() << ReplFailureKindName(failures[i].result.failure) << " at "
                  << ReplFuzzer::PhaseName(failures[i].fuzz_case.phase)
                  << " ordinal " << failures[i].fuzz_case.ordinal << " mask "
                  << failures[i].fuzz_case.crash_mask << ": "
                  << failures[i].result.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, ReplSweepTest,
                         ::testing::Values(ReplProtocol::kPrimaryBackup,
                                           ReplProtocol::kOneSidedRedo),
                         [](const auto& info) {
                           return std::string(ReplProtocolName(info.param));
                         });

// ---- Teeth: the fuzzer must catch the seeded ablations ----------------------

TEST(ReplFuzzerTeethTest, BrokenIntentRedoIsCaught) {
  // Recovery scrubs surviving intents without re-applying them: the crashed
  // transaction loses its all-or-nothing guarantee. Crashing the whole
  // cluster right after the coordinator intent became durable must surface
  // as a torn transaction (or a replica divergence, depending on how far
  // the apply got).
  ReplFuzzConfig config = SmallConfig(ReplProtocol::kPrimaryBackup);
  config.break_intent_redo = true;
  ReplFuzzer fuzzer(config);
  ReplFuzzCase c = SmallCase();
  c.phase = ReplStopPhase::kAfterReplicate;
  c.crash_mask = ~0ull;
  const ReplCaseResult result = fuzzer.Run(c);
  ASSERT_FALSE(result.ok()) << "the seeded bug went undetected";
  EXPECT_TRUE(result.failure == ReplFailureKind::kTornTxn ||
              result.failure == ReplFailureKind::kDivergentReplica)
      << ReplFailureKindName(result.failure) << ": " << result.detail;
}

TEST(ReplFuzzerTeethTest, BrokenIntentRedoIsCaughtBySweep) {
  ReplFuzzConfig config = SmallConfig(ReplProtocol::kPrimaryBackup);
  config.break_intent_redo = true;
  ReplFuzzer fuzzer(config);
  std::vector<ReplFuzzFailure> failures;
  const fuzz::SweepStats stats = fuzzer.Systematic(/*seed=*/11, &failures);
  EXPECT_GT(stats.failures, 0u) << "sweep of " << stats.cases
                                << " cases missed the seeded bug";
}

TEST(ReplFuzzerTeethTest, UnpersistedRedoRecordIsCaught) {
  // One-sided redo with the persist elided: the doorbell (and the ack)
  // races the record. The trace replay through the PM-Sanitizer must flag
  // the NPM007 hazard even on schedules where the crash happens to spare
  // the record.
  ReplFuzzConfig config = SmallConfig(ReplProtocol::kOneSidedRedo);
  config.skip_redo_persist = true;
  ReplFuzzer fuzzer(config);
  ReplFuzzCase c = SmallCase();
  c.phase = ReplStopPhase::kNone;
  const ReplCaseResult result = fuzzer.Run(c);
  ASSERT_FALSE(result.ok()) << "the seeded bug went undetected";
  EXPECT_EQ(result.failure, ReplFailureKind::kDoorbellHazard)
      << ReplFailureKindName(result.failure) << ": " << result.detail;
}

TEST(ReplFuzzerTeethTest, PersistedRedoHasNoDoorbellHazard) {
  ReplFuzzer fuzzer(SmallConfig(ReplProtocol::kOneSidedRedo));
  ReplFuzzCase c = SmallCase();
  c.phase = ReplStopPhase::kNone;
  const ReplCaseResult result = fuzzer.Run(c);
  EXPECT_TRUE(result.ok()) << ReplFailureKindName(result.failure) << ": "
                           << result.detail;
}

// ---- Corpus round-trip ------------------------------------------------------

TEST(ReplCorpusTest, ReproRoundTripsThroughJson) {
  ReplFuzzConfig config = SmallConfig(ReplProtocol::kOneSidedRedo);
  config.skip_redo_persist = true;
  ReplFuzzer fuzzer(config);
  ReplFuzzCase c = SmallCase();
  c.phase = ReplStopPhase::kMidApply;
  c.ordinal = 1;
  c.crash_mask = 0b0101;
  c.lines_survive = true;

  const fuzz::CrashRepro repro =
      fuzzer.ToRepro(c, "violation", "unit-test round trip");
  EXPECT_EQ(repro.kind, "repl");
  const std::string json = fuzz::ReproToJson(repro);
  auto parsed = fuzz::ReproFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, "repl");
  EXPECT_EQ(parsed->repl_protocol, "redo");
  EXPECT_EQ(parsed->repl_phase, "mid_apply");
  EXPECT_EQ(parsed->repl_ordinal, 1u);
  EXPECT_EQ(parsed->repl_crash_mask, 0b0101u);
  EXPECT_TRUE(parsed->repl_survive);
  EXPECT_TRUE(parsed->repl_skip_redo_persist);
  EXPECT_EQ(parsed->expect, "violation");

  const ReplFuzzConfig config2 = ReplFuzzer::ConfigFromRepro(*parsed);
  EXPECT_EQ(config2.protocol, ReplProtocol::kOneSidedRedo);
  EXPECT_TRUE(config2.skip_redo_persist);
  EXPECT_EQ(config2.groups, 2);
  EXPECT_EQ(config2.replicas, 2);

  auto c2 = ReplFuzzer::CaseFromRepro(*parsed);
  ASSERT_TRUE(c2.ok()) << c2.status().ToString();
  EXPECT_EQ(c2->seed, c.seed);
  EXPECT_EQ(c2->warmup_ops, c.warmup_ops);
  EXPECT_EQ(c2->txn_pairs, c.txn_pairs);
  EXPECT_EQ(c2->phase, ReplStopPhase::kMidApply);
  EXPECT_EQ(c2->ordinal, 1);
  EXPECT_EQ(c2->crash_mask, 0b0101u);
  EXPECT_TRUE(c2->lines_survive);
}

TEST(ReplCorpusTest, ReplayedReproReproducesTheVerdict) {
  // The round-tripped repro of a teeth case must still fail when replayed
  // through the corpus path, and its healthy twin must still pass.
  ReplFuzzConfig broken = SmallConfig(ReplProtocol::kPrimaryBackup);
  broken.break_intent_redo = true;
  ReplFuzzer bad_fuzzer(broken);
  ReplFuzzCase c = SmallCase();
  c.phase = ReplStopPhase::kAfterReplicate;
  c.crash_mask = ~0ull;

  const fuzz::CrashRepro repro = bad_fuzzer.ToRepro(c, "violation", "teeth");
  auto parsed = fuzz::ReproFromJson(fuzz::ReproToJson(repro));
  ASSERT_TRUE(parsed.ok());
  ReplFuzzer replayed(ReplFuzzer::ConfigFromRepro(*parsed));
  auto replay_case = ReplFuzzer::CaseFromRepro(*parsed);
  ASSERT_TRUE(replay_case.ok());
  EXPECT_FALSE(replayed.Run(*replay_case).ok());

  ReplFuzzer healthy(SmallConfig(ReplProtocol::kPrimaryBackup));
  EXPECT_TRUE(healthy.Run(*replay_case).ok());
}

TEST(ReplCorpusTest, FileNameEncodesTheSchedule) {
  ReplFuzzer fuzzer(SmallConfig(ReplProtocol::kPrimaryBackup));
  ReplFuzzCase c = SmallCase();
  c.phase = ReplStopPhase::kAfterIntent;
  c.crash_mask = 3;
  const fuzz::CrashRepro repro = fuzzer.ToRepro(c, "recoverable", "");
  const std::string name = fuzz::ReproFileName(repro);
  EXPECT_NE(name.find("repl_pb"), std::string::npos) << name;
  EXPECT_NE(name.find("after_intent"), std::string::npos) << name;
  EXPECT_NE(name.find("m3"), std::string::npos) << name;
}

TEST(ReplFuzzerTest, PhaseNamesRoundTrip) {
  for (ReplStopPhase phase :
       {ReplStopPhase::kNone, ReplStopPhase::kAfterIntent,
        ReplStopPhase::kMidReplicate, ReplStopPhase::kAfterReplicate,
        ReplStopPhase::kMidApply, ReplStopPhase::kAfterApply,
        ReplStopPhase::kAfterSync}) {
    auto parsed = ReplFuzzer::PhaseFromName(ReplFuzzer::PhaseName(phase));
    ASSERT_TRUE(parsed.ok()) << ReplFuzzer::PhaseName(phase);
    EXPECT_EQ(*parsed, phase);
  }
  EXPECT_FALSE(ReplFuzzer::PhaseFromName("mid_warp").ok());
}

}  // namespace
}  // namespace repl
}  // namespace nearpm
