// Recovery edge cases, asserted through the trace-driven PpoChecker:
// crashes with an empty journal, a second failure before software recovery
// runs (the closest modelable analogue of a crash during replay -- hardware
// replay itself is atomic in the simulator), and multi-device crashes with
// commits in flight past the latest synchronization point. Plus direct unit
// tests of the RecoveryJournal frontier semantics (Section 5.3.3).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/core/runtime.h"
#include "src/ndp/recovery_journal.h"
#include "src/pmlib/heap.h"
#include "src/trace/ppo_checker.h"
#include "src/trace/recorder.h"

namespace nearpm {
namespace {

NearPmRequest Request(std::uint64_t seq) {
  NearPmRequest r;
  r.seq = seq;
  r.op = NearPmOp::kUndologCreate;
  return r;
}

// ---- RecoveryJournal frontier semantics -------------------------------------

TEST(RecoveryJournalTest, FrontierZeroReplaysNothing) {
  RecoveryJournal journal;
  journal.Add(Request(1), /*after_sync=*/0, /*completion=*/100);
  journal.Add(Request(2), /*after_sync=*/0, /*completion=*/200);
  // No synchronization was ever reached: hardware recovery replays nothing;
  // the logs stay intact for software recovery.
  EXPECT_TRUE(journal.ReplaySet(0).empty());
}

TEST(RecoveryJournalTest, ReplaySetStopsAtTheFrontier) {
  RecoveryJournal journal;
  journal.Add(Request(1), /*after_sync=*/0, /*completion=*/100);
  journal.Add(Request(2), /*after_sync=*/1, /*completion=*/200);
  journal.Add(Request(3), /*after_sync=*/2, /*completion=*/300);

  // Requests issued after the last fully-reached synchronization (id 2) are
  // beyond the replay window.
  const auto replay = journal.ReplaySet(/*frontier=*/2);
  ASSERT_EQ(replay.size(), 2u);
  EXPECT_EQ(replay[0].request.seq, 1u);
  EXPECT_EQ(replay[1].request.seq, 2u);
}

TEST(RecoveryJournalTest, ObservedCompletionsLeaveTheJournal) {
  RecoveryJournal journal;
  journal.Add(Request(1), 0, 100);
  journal.Add(Request(2), 1, 200);
  journal.Add(Request(3), 2, 300);

  journal.Remove(2);  // completion polled by the CPU
  EXPECT_EQ(journal.size(), 2u);

  journal.RemoveCompletedBefore(100);  // left the request FIFO
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal.entries().front().request.seq, 3u);

  journal.RemoveThroughSync(3);  // synchronization covered everything
  EXPECT_TRUE(journal.entries().empty());
}

// ---- Crash with an empty journal --------------------------------------------

TEST(RecoveryTraceTest, EmptyJournalCrashReplaysNothing) {
  RuntimeOptions options;
  options.mode = ExecMode::kNdpMultiDelayed;
  options.pm_size = 16ull << 20;
  Runtime rt(options);
  TraceRecorder recorder;
  rt.AttachTrace(&recorder);

  Rng rng(3);
  rt.InjectCrash(rng);

  std::size_t crashes = 0;
  std::size_t replays = 0;
  for (const TraceEvent& e : recorder.Snapshot()) {
    crashes += e.phase == TracePhase::kCrash;
    replays += e.phase == TracePhase::kRecoveryReplay;
  }
  EXPECT_EQ(crashes, 1u);
  EXPECT_EQ(replays, 0u);
  EXPECT_EQ(recorder.epoch(), 1u);  // the crash started a fresh epoch

  const auto violations = PpoChecker{}.Check(recorder);
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

// ---- Multi-device crash with commits in flight ------------------------------

TEST(RecoveryTraceTest, MultiDeviceReplayStaysInsideTheInFlightWindow) {
  RuntimeOptions options;
  options.mode = ExecMode::kNdpMultiDelayed;
  options.pm_size = 16ull << 20;
  Runtime rt(options);
  TraceRecorder recorder;
  rt.AttachTrace(&recorder);
  auto pool = rt.RegisterPool(0, 2 << 20);
  ASSERT_TRUE(pool.ok());

  // Several committed operations (each commit issues a cross-device sync
  // and deferred log deletions), then uncommitted creates still in flight
  // past the latest synchronization point when the power fails.
  const PmAddr slot_base = 1 << 20;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const PmAddr slot = slot_base + i * 8192;
    ASSERT_TRUE(rt.UndologCreate(*pool, 0, /*tx_id=*/i + 1,
                                 /*old_data=*/i * 4096, 4096, slot)
                    .ok());
    const PmAddr slots[] = {slot};
    ASSERT_TRUE(rt.CommitLog(*pool, 0, slots).ok());
  }
  for (std::uint64_t i = 4; i < 6; ++i) {
    ASSERT_TRUE(rt.UndologCreate(*pool, 0, /*tx_id=*/i + 1,
                                 /*old_data=*/i * 4096, 4096,
                                 slot_base + i * 8192)
                    .ok());
  }
  Rng rng(11);
  rt.InjectCrash(rng);

  // Every replayed request must have been issued before the crash -- the
  // checker's Invariant 4 asserts that, plus never-durable and no-duplicate.
  const auto violations = PpoChecker{}.Check(recorder);
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);

  std::set<std::uint64_t> issued;
  std::set<std::uint64_t> replayed;
  const TraceEvent* crash = nullptr;
  for (const TraceEvent& e : recorder.Snapshot()) {
    if (e.phase == TracePhase::kUnitExec ||
        e.phase == TracePhase::kDeferredExec) {
      issued.insert(e.seq);
    } else if (e.phase == TracePhase::kRecoveryReplay) {
      replayed.insert(e.seq);
    } else if (e.phase == TracePhase::kCrash) {
      crash = &e;
    }
  }
  ASSERT_NE(crash, nullptr);
  for (std::uint64_t seq : replayed) {
    EXPECT_TRUE(issued.count(seq)) << "replayed unknown seq " << seq;
  }
  // Requests issued after the frontier synchronization are left to software
  // recovery; the replay set can never cover more than what was in flight.
  EXPECT_LE(replayed.size(), issued.size());
}

// ---- Heap-level crash/recover cycles ----------------------------------------

struct Record {
  std::uint64_t counter = 0;
  std::uint64_t checksum = 0;
};

void Update(PersistentHeap& heap, PmAddr addr, std::uint64_t value) {
  ASSERT_TRUE(heap.BeginOp(0).ok());
  ASSERT_TRUE(heap.Store(0, addr, Record{value, value ^ 0xabcdef}).ok());
  ASSERT_TRUE(heap.CommitOp(0).ok());
}

TEST(RecoveryHeapTest, SecondCrashBeforeSoftwareRecoveryIsStillConsistent) {
  RuntimeOptions options;
  options.mode = ExecMode::kNdpMultiDelayed;
  options.pm_size = 64ull << 20;
  Runtime rt(options);
  TraceRecorder recorder;
  rt.AttachTrace(&recorder);
  PoolArena arena;
  HeapOptions heap_options;
  heap_options.mechanism = Mechanism::kLogging;
  heap_options.data_size = 1 << 20;
  auto heap_or = PersistentHeap::Create(rt, arena, heap_options);
  ASSERT_TRUE(heap_or.ok());
  PersistentHeap& heap = **heap_or;
  const PmAddr rec_addr = heap.root();

  for (std::uint64_t i = 1; i <= 10; ++i) {
    Update(heap, rec_addr, i);
  }
  // Torn 11th operation: the undo log is durable (the store stalled behind
  // the log create, Invariant 2), the new value may or may not have hit PM.
  ASSERT_TRUE(heap.BeginOp(0).ok());
  ASSERT_TRUE(heap.Store(0, rec_addr, Record{11, 11 ^ 0xabcdef}).ok());

  Rng rng(42);
  rt.InjectCrash(rng);
  // Power fails again before any software recovery ran. The journal was
  // already drained by the first crash's hardware replay; the second pass
  // must find nothing to replay and leave the logs intact.
  rt.InjectCrash(rng);
  EXPECT_EQ(recorder.epoch(), 2u);

  heap.DropVolatile();
  ASSERT_TRUE(heap.Recover().ok());
  auto rec = heap.Load<Record>(0, rec_addr);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->counter, 10u);  // the torn operation rolled back
  EXPECT_EQ(rec->checksum, rec->counter ^ 0xabcdef);

  const auto violations = PpoChecker{}.Check(recorder);
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

TEST(RecoveryHeapTest, RepeatedCrashRecoverCyclesStayClean) {
  RuntimeOptions options;
  options.mode = ExecMode::kNdpMultiDelayed;
  options.pm_size = 64ull << 20;
  Runtime rt(options);
  TraceRecorder recorder;
  rt.AttachTrace(&recorder);
  PoolArena arena;
  HeapOptions heap_options;
  heap_options.mechanism = Mechanism::kLogging;
  heap_options.data_size = 1 << 20;
  auto heap_or = PersistentHeap::Create(rt, arena, heap_options);
  ASSERT_TRUE(heap_or.ok());
  PersistentHeap& heap = **heap_or;
  const PmAddr rec_addr = heap.root();

  std::uint64_t committed = 0;
  Rng rng(7);
  for (int cycle = 0; cycle < 5; ++cycle) {
    Update(heap, rec_addr, ++committed);
    // Leave an operation torn on odd cycles.
    if (cycle % 2 == 1) {
      ASSERT_TRUE(heap.BeginOp(0).ok());
      ASSERT_TRUE(
          heap.Store(0, rec_addr, Record{1000 + committed, 0}).ok());
    }
    rt.InjectCrash(rng);
    heap.DropVolatile();
    ASSERT_TRUE(heap.Recover().ok());
    auto rec = heap.Load<Record>(0, rec_addr);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->counter, committed) << "cycle " << cycle;
  }
  EXPECT_EQ(recorder.epoch(), 5u);

  const auto violations = PpoChecker{}.Check(recorder);
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

}  // namespace
}  // namespace nearpm
