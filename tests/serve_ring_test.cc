// Unit and stress coverage for the lock-free MPSC ring (src/serve/
// mpsc_ring.h): wraparound at the slot-sequence boundary, concurrent
// multi-producer ordering, backpressure, and the park/unpark protocol.
// The concurrent cases are the payload of the CI ThreadSanitizer job: any
// missing happens-before edge in the sequence protocol shows up here as a
// reported race.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "src/serve/mpsc_ring.h"

namespace nearpm {
namespace serve {
namespace {

TEST(MpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(MpscRing<int>(100).capacity(), 128u);
}

TEST(MpscRingTest, FifoOrderSingleThreaded) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) {
    int v = i;
    EXPECT_TRUE(ring.TryPush(v));
  }
  EXPECT_EQ(ring.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    auto out = ring.TryPop();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
  EXPECT_EQ(ring.size(), 0u);
}

// The slot sequences must survive the index wrapping around the ring many
// times: after `capacity` pushes every slot is on its next lap, and a
// full->empty->full cycle sits exactly at the sequence boundary.
TEST(MpscRingTest, WraparoundAtTheSequenceBoundary) {
  constexpr std::size_t kCapacity = 4;
  MpscRing<std::uint64_t> ring(kCapacity);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  for (int lap = 0; lap < 1000; ++lap) {
    // Fill to the brim, confirm the boundary rejects, then drain dry.
    while (true) {
      std::uint64_t v = next_push;
      if (!ring.TryPush(v)) {
        break;
      }
      ++next_push;
    }
    EXPECT_EQ(ring.size(), kCapacity);
    std::uint64_t rejected = next_push;
    EXPECT_FALSE(ring.TryPush(rejected)) << "lap " << lap;
    while (auto out = ring.TryPop()) {
      EXPECT_EQ(*out, next_pop) << "FIFO broken on lap " << lap;
      ++next_pop;
    }
    EXPECT_EQ(next_pop, next_push);
    EXPECT_FALSE(ring.TryPop().has_value());
  }
  EXPECT_EQ(next_push, 1000u * kCapacity);
}

// Mixed partial fill/drain so head and tail cross every slot at different
// laps (catches a sequence computed from the wrong lap).
TEST(MpscRingTest, InterleavedWraparoundKeepsFifo) {
  MpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  for (int round = 0; round < 5000; ++round) {
    const int pushes = 1 + round % 3;
    for (int i = 0; i < pushes; ++i) {
      std::uint64_t v = next_push;
      if (ring.TryPush(v)) {
        ++next_push;
      }
    }
    const int pops = 1 + (round % 4);
    for (int i = 0; i < pops; ++i) {
      if (auto out = ring.TryPop()) {
        EXPECT_EQ(*out, next_pop);
        ++next_pop;
      }
    }
  }
  while (auto out = ring.TryPop()) {
    EXPECT_EQ(*out, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(MpscRingTest, CloseRejectsAdmissionAndDrainsRemainder) {
  MpscRing<int> ring(4);
  int a = 1;
  int b = 2;
  EXPECT_TRUE(ring.TryPush(a));
  EXPECT_TRUE(ring.TryPush(b));
  ring.Close();
  int c = 3;
  EXPECT_FALSE(ring.TryPush(c)) << "a closed ring must reject";
  // Items admitted before the close still drain, then end-of-stream.
  auto first = ring.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 1);
  auto second = ring.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 2);
  EXPECT_FALSE(ring.Pop().has_value()) << "closed + drained must end";
  EXPECT_FALSE(ring.TryPop().has_value());
}

// Multi-producer stress: every producer's stream must arrive complete and
// in its own order (per-producer FIFO), with backpressure rejections
// retried. The consumer uses the blocking Pop path, so this also exercises
// park/unpark under real contention.
TEST(MpscRingStressTest, ConcurrentProducersPreserveEachStreamsOrder) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  MpscRing<std::pair<int, std::uint64_t>> ring(64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::pair<int, std::uint64_t> item(p, i);
        while (!ring.TryPush(item)) {
          std::this_thread::yield();  // backpressure: retry
        }
      }
    });
  }

  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t received = 0;
  std::thread consumer([&] {
    while (auto item = ring.Pop()) {
      ASSERT_LT(item->first, kProducers);
      EXPECT_EQ(item->second, next[item->first])
          << "producer " << item->first << " stream reordered";
      ++next[item->first];
      ++received;
    }
  });

  for (auto& producer : producers) {
    producer.join();
  }
  ring.Close();
  consumer.join();

  EXPECT_EQ(received, kProducers * kPerProducer);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], kPerProducer) << "producer " << p << " lost items";
  }
}

// The service runs a small pool of consumers per shard: the pop side must
// be safe for that too. Totals must balance with no duplicates or losses.
TEST(MpscRingStressTest, MultipleConsumersReceiveEveryItemOnce) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 15000;
  MpscRing<std::uint64_t> ring(32);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t tagged = static_cast<std::uint64_t>(p) * kPerProducer + i;
        while (!ring.TryPush(tagged)) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::vector<std::uint64_t>> seen(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&ring, &seen, c] {
      while (auto item = ring.Pop()) {
        seen[c].push_back(*item);
      }
    });
  }

  for (auto& producer : producers) {
    producer.join();
  }
  ring.Close();
  for (auto& consumer : consumers) {
    consumer.join();
  }

  std::set<std::uint64_t> all;
  std::size_t total = 0;
  for (const auto& stream : seen) {
    total += stream.size();
    all.insert(stream.begin(), stream.end());
  }
  EXPECT_EQ(total, kProducers * kPerProducer) << "lost or duplicated items";
  EXPECT_EQ(all.size(), kProducers * kPerProducer) << "duplicated items";
}

// Park/unpark under a deliberately slow consumer: the consumer blocks dry,
// the producer wakes it one item at a time, and Close() releases the final
// park. A missing wakeup hangs this test (caught by the ctest timeout).
TEST(MpscRingStressTest, ParkedConsumerWakesOnPushAndClose) {
  MpscRing<int> ring(4);
  std::atomic<int> received{0};
  std::thread consumer([&ring, &received] {
    while (auto item = ring.Pop()) {
      received.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Trickle items with gaps long enough that the consumer parks between
  // them (spin budget is tiny); every push must unpark it.
  for (int i = 0; i < 20; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    int v = i;
    while (!ring.TryPush(v)) {
      std::this_thread::yield();
    }
  }
  // Wait for the trickle to drain, then close while the consumer is parked.
  while (received.load(std::memory_order_relaxed) < 20) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ring.Close();
  consumer.join();
  EXPECT_EQ(received.load(), 20);
}

// A burst of producers against one parked consumer: Pop must never return
// end-of-stream while admitted items remain, even when Close() races the
// last pushes.
TEST(MpscRingStressTest, CloseNeverStrandsAdmittedItems) {
  for (int round = 0; round < 50; ++round) {
    MpscRing<int> ring(8);
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> drained{0};
    std::atomic<bool> stop{false};

    std::thread producer([&ring, &accepted, &stop] {
      int v = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        int item = v;
        if (ring.TryPush(item)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          ++v;
        }
      }
    });
    std::thread consumer([&ring, &drained] {
      while (ring.Pop()) {
        drained.fetch_add(1, std::memory_order_relaxed);
      }
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ring.Close();
    stop.store(true, std::memory_order_relaxed);
    producer.join();
    consumer.join();
    // Every admitted item must have been drained: the close/claim race is
    // decided by the tail word, so acceptance implies delivery.
    EXPECT_EQ(drained.load(), accepted.load()) << "round " << round;
  }
}

}  // namespace
}  // namespace serve
}  // namespace nearpm
