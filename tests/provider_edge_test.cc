// Edge-case behaviour of the crash-consistency providers: resource
// exhaustion, epoch boundaries, redirect corner cases, switch-record
// atomicity, pool layout arithmetic.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/pmlib/heap.h"

namespace nearpm {
namespace {

RuntimeOptions Opts(ExecMode mode = ExecMode::kNdpMultiDelayed) {
  RuntimeOptions o;
  o.mode = mode;
  o.pm_size = 128ull << 20;
  return o;
}

std::unique_ptr<PersistentHeap> MakeHeap(Runtime& rt, PoolArena& arena,
                                         Mechanism mech, int epoch_ops = 4) {
  HeapOptions ho;
  ho.mechanism = mech;
  ho.data_size = 2ull << 20;
  ho.ckpt_epoch_ops = epoch_ops;
  auto h = PersistentHeap::Create(rt, arena, ho);
  EXPECT_TRUE(h.ok());
  return std::move(*h);
}

// ---- Pool layout --------------------------------------------------------------

TEST(PoolLayoutTest, FootprintCoversAllRegions) {
  PoolLayoutOptions opts;
  opts.data_size = 1ull << 20;
  opts.threads = 4;
  const std::uint64_t plain = PmPool::Footprint(opts);
  opts.shadow_physical_area = true;
  const std::uint64_t shadowed = PmPool::Footprint(opts);
  EXPECT_EQ(shadowed - plain, 2 * opts.data_size);
  EXPECT_EQ(plain % kPmPageSize, 0u);
}

TEST(PoolLayoutTest, RegionsDoNotOverlap) {
  Runtime rt(Opts());
  PoolLayoutOptions opts;
  opts.data_size = 1ull << 20;
  opts.threads = 2;
  opts.shadow_physical_area = true;
  auto pool = PmPool::Create(rt, 0, opts);
  ASSERT_TRUE(pool.ok());
  EXPECT_LT(pool->chunk_headers(), pool->page_table());
  EXPECT_LT(pool->page_table(), pool->data_base());
  EXPECT_LE(pool->data_base() + pool->data_size(), pool->phys_base());
  EXPECT_LE(pool->phys_base() + 2 * pool->data_size(),
            pool->cc_area(0).base());
  EXPECT_EQ(pool->cc_area(1).base() - pool->cc_area(0).base(), CcArea::kSize);
  EXPECT_LE(pool->cc_area(1).base() + CcArea::kSize,
            pool->base() + PmPool::Footprint(opts));
}

TEST(PoolLayoutTest, RejectsBadParameters) {
  Runtime rt(Opts());
  PoolLayoutOptions opts;
  opts.data_size = 100;  // not page aligned
  EXPECT_FALSE(PmPool::Create(rt, 0, opts).ok());
  opts.data_size = 1ull << 20;
  EXPECT_FALSE(PmPool::Create(rt, 100, opts).ok());  // base unaligned
  opts.threads = 10000;
  EXPECT_FALSE(PmPool::Create(rt, 0, opts).ok());
}

TEST(CcAreaTest, SlotAddressingDisjoint) {
  const CcArea area(1 << 20);
  EXPECT_EQ(area.TxRecordAddr(), area.base());
  // Undo, redo and checkpoint slot arrays tile without gaps or overlap.
  EXPECT_EQ(area.UndoSlotAddr(1) - area.UndoSlotAddr(0), kSlotSize);
  EXPECT_EQ(area.RedoSlotAddr(0), area.UndoSlotAddr(kLogSlots));
  EXPECT_EQ(area.CkptSlotAddr(0), area.RedoSlotAddr(kLogSlots));
  EXPECT_LE(area.CkptSlotAddr(kCkptSlots - 1) + kSlotSize,
            area.base() + CcArea::kSize);
  EXPECT_EQ(CcArea::SlotData(area.UndoSlotAddr(0)),
            area.UndoSlotAddr(0) + kSlotHeaderSize);
}

TEST(ChecksumTest, NeverZeroAndSensitive) {
  std::vector<std::uint8_t> empty;
  EXPECT_NE(Checksum64(empty), 0u);
  std::vector<std::uint8_t> a{1, 2, 3};
  std::vector<std::uint8_t> b{1, 2, 4};
  EXPECT_NE(Checksum64(a), Checksum64(b));
  EXPECT_EQ(Checksum64(a), Checksum64(a));
}

// ---- Undo provider -------------------------------------------------------------

TEST(UndoEdgeTest, SlotExhaustionReported) {
  Runtime rt(Opts());
  PoolArena arena;
  auto heap = MakeHeap(rt, arena, Mechanism::kLogging);
  ASSERT_TRUE(heap->BeginOp(0).ok());
  Status st;
  for (std::size_t i = 0; i <= kLogSlots; ++i) {
    st = heap->Store<std::uint64_t>(0, heap->root() + i * 64, i);
    if (!st.ok()) {
      break;
    }
  }
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(UndoEdgeTest, RepeatedRangeUsesOneSlot) {
  Runtime rt(Opts());
  PoolArena arena;
  auto heap = MakeHeap(rt, arena, Mechanism::kLogging);
  ASSERT_TRUE(heap->BeginOp(0).ok());
  for (int i = 0; i < 200; ++i) {  // far more writes than slots
    ASSERT_TRUE(heap->Store<std::uint64_t>(0, heap->root(), i).ok());
  }
  ASSERT_TRUE(heap->CommitOp(0).ok());
  EXPECT_EQ(*heap->Load<std::uint64_t>(0, heap->root()), 199u);
}

TEST(UndoEdgeTest, OverlappingRangesRollBackToOldest) {
  Runtime rt(Opts());
  PoolArena arena;
  auto heap = MakeHeap(rt, arena, Mechanism::kLogging);
  const PmAddr a = heap->root();
  // Committed: 8 bytes of 0x11.
  ASSERT_TRUE(heap->BeginOp(0).ok());
  ASSERT_TRUE(heap->Store<std::uint64_t>(0, a, 0x1111111111111111ull).ok());
  ASSERT_TRUE(heap->CommitOp(0).ok());
  rt.DrainDevices(0);
  // Torn op: snapshot [a, a+8), write, then snapshot the wider [a, a+16)
  // (not contained, so a second slot), write again.
  ASSERT_TRUE(heap->BeginOp(0).ok());
  ASSERT_TRUE(heap->Store<std::uint64_t>(0, a, 0x22u).ok());
  std::uint64_t wide[2] = {0x33u, 0x33u};
  ASSERT_TRUE(heap->Write(0, a, AsBytes(wide)).ok());
  rt.DrainDevices(0);
  Rng rng(3);
  rt.InjectCrash(rng);
  heap->DropVolatile();
  ASSERT_TRUE(heap->Recover().ok());
  EXPECT_EQ(*heap->Load<std::uint64_t>(0, a), 0x1111111111111111ull);
}

// ---- Redo provider -------------------------------------------------------------

TEST(RedoEdgeTest, LoadSeesOwnUncommittedWrite) {
  Runtime rt(Opts());
  PoolArena arena;
  auto heap = MakeHeap(rt, arena, Mechanism::kRedoLogging);
  ASSERT_TRUE(heap->BeginOp(0).ok());
  ASSERT_TRUE(heap->Store<std::uint64_t>(0, heap->root(), 777).ok());
  EXPECT_EQ(*heap->Load<std::uint64_t>(0, heap->root()), 777u);
  // The in-place location is untouched until commit applies the log.
  ASSERT_TRUE(heap->CommitOp(0).ok());
  rt.DrainDevices(0);
  EXPECT_EQ(*heap->Load<std::uint64_t>(0, heap->root()), 777u);
}

TEST(RedoEdgeTest, PartialOverlapLoadRejected) {
  Runtime rt(Opts());
  PoolArena arena;
  auto heap = MakeHeap(rt, arena, Mechanism::kRedoLogging);
  ASSERT_TRUE(heap->BeginOp(0).ok());
  std::uint64_t pair[2] = {1, 2};
  ASSERT_TRUE(heap->Write(0, heap->root(), AsBytes(pair)).ok());
  // A load straddling the redirected range's boundary cannot be served.
  std::uint8_t out[16];
  EXPECT_EQ(heap->Read(0, heap->root() + 8, out).code(),
            StatusCode::kFailedPrecondition);
  // Fully inside and fully outside both work.
  EXPECT_TRUE(heap->Read(0, heap->root() + 8, {out, 8}).ok());
  EXPECT_TRUE(heap->Read(0, heap->root() + 64, {out, 8}).ok());
}

TEST(RedoEdgeTest, RewriteSameRangeReusesSlot) {
  Runtime rt(Opts());
  PoolArena arena;
  auto heap = MakeHeap(rt, arena, Mechanism::kRedoLogging);
  ASSERT_TRUE(heap->BeginOp(0).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(heap->Store<std::uint64_t>(0, heap->root(), i).ok());
  }
  ASSERT_TRUE(heap->CommitOp(0).ok());
  rt.DrainDevices(0);
  EXPECT_EQ(*heap->Load<std::uint64_t>(0, heap->root()), 199u);
}

// ---- Checkpoint provider --------------------------------------------------------

TEST(CkptEdgeTest, EpochClosesAtInterval) {
  Runtime rt(Opts());
  PoolArena arena;
  auto heap = MakeHeap(rt, arena, Mechanism::kCheckpointing, /*epoch_ops=*/3);
  auto& provider = static_cast<CheckpointProvider&>(heap->provider());
  for (int op = 0; op < 9; ++op) {
    ASSERT_TRUE(heap->BeginOp(0).ok());
    ASSERT_TRUE(heap->Store<std::uint64_t>(0, heap->root(), op).ok());
    ASSERT_TRUE(heap->CommitOp(0).ok());
  }
  EXPECT_EQ(provider.epochs_closed(), 3u);
}

TEST(CkptEdgeTest, EpochClosesEarlyUnderSlotPressure) {
  Runtime rt(Opts());
  PoolArena arena;
  auto heap =
      MakeHeap(rt, arena, Mechanism::kCheckpointing, /*epoch_ops=*/1000);
  auto& provider = static_cast<CheckpointProvider&>(heap->provider());
  // Touch many distinct pages; the epoch must close before slots run out.
  for (int op = 0; op < 30; ++op) {
    ASSERT_TRUE(heap->BeginOp(0).ok());
    for (int p = 0; p < 4; ++p) {
      ASSERT_TRUE(heap->Store<std::uint64_t>(
                          0,
                          heap->root() +
                              static_cast<PmAddr>(op * 4 + p) * kPmPageSize,
                          op)
                      .ok());
    }
    ASSERT_TRUE(heap->CommitOp(0).ok());
  }
  EXPECT_GT(provider.epochs_closed(), 0u);
}

TEST(CkptEdgeTest, PageCheckpointedOncePerEpoch) {
  Runtime rt(Opts());
  PoolArena arena;
  auto heap = MakeHeap(rt, arena, Mechanism::kCheckpointing, /*epoch_ops=*/8);
  const std::uint64_t before = rt.counters().ckpoint_create;
  for (int op = 0; op < 8; ++op) {  // one epoch, same page every op
    ASSERT_TRUE(heap->BeginOp(0).ok());
    ASSERT_TRUE(heap->Store<std::uint64_t>(0, heap->root(), op).ok());
    ASSERT_TRUE(heap->CommitOp(0).ok());
  }
  EXPECT_EQ(rt.counters().ckpoint_create - before, 1u);
}

// ---- Shadow provider -------------------------------------------------------------

TEST(ShadowEdgeTest, MultiPageOperationIsAtomic) {
  Runtime rt(Opts());
  PoolArena arena;
  auto heap = MakeHeap(rt, arena, Mechanism::kShadowPaging);
  // Committed: two pages with known values.
  ASSERT_TRUE(heap->BeginOp(0).ok());
  ASSERT_TRUE(heap->Store<std::uint64_t>(0, heap->root(), 1).ok());
  ASSERT_TRUE(
      heap->Store<std::uint64_t>(0, heap->root() + kPmPageSize, 1).ok());
  ASSERT_TRUE(heap->CommitOp(0).ok());
  rt.DrainDevices(0);
  // Repeatedly update both pages in one op, crash at arbitrary points: the
  // two pages must always agree (both old or both new).
  Rng rng(11);
  for (int round = 0; round < 8; ++round) {
    const std::uint64_t next =
        *heap->Load<std::uint64_t>(0, heap->root()) + 1;
    ASSERT_TRUE(heap->BeginOp(0).ok());
    ASSERT_TRUE(heap->Store<std::uint64_t>(0, heap->root(), next).ok());
    ASSERT_TRUE(
        heap->Store<std::uint64_t>(0, heap->root() + kPmPageSize, next).ok());
    if (rng.NextBool(0.5)) {
      ASSERT_TRUE(heap->CommitOp(0).ok());
    }
    rt.InjectCrash(rng);
    heap->DropVolatile();
    ASSERT_TRUE(heap->Recover().ok());
    const std::uint64_t a = *heap->Load<std::uint64_t>(0, heap->root());
    const std::uint64_t b =
        *heap->Load<std::uint64_t>(0, heap->root() + kPmPageSize);
    ASSERT_EQ(a, b) << "round " << round;
  }
}

TEST(ShadowEdgeTest, TooManyPagesInOneOpRejected) {
  Runtime rt(Opts());
  PoolArena arena;
  auto heap = MakeHeap(rt, arena, Mechanism::kShadowPaging);
  ASSERT_TRUE(heap->BeginOp(0).ok());
  Status st;
  for (std::size_t p = 0; p <= kMaxSwitchEntries; ++p) {
    st = heap->Store<std::uint64_t>(
        0, heap->root() + static_cast<PmAddr>(p) * kPmPageSize, p);
    if (!st.ok()) {
      break;
    }
  }
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(ShadowEdgeTest, ReadOnlyOpCommitsCheaply) {
  Runtime rt(Opts());
  PoolArena arena;
  auto heap = MakeHeap(rt, arena, Mechanism::kShadowPaging);
  const std::uint64_t copies_before = rt.counters().shadowcpy;
  ASSERT_TRUE(heap->BeginOp(0).ok());
  std::uint8_t out[8];
  ASSERT_TRUE(heap->Read(0, heap->root(), out).ok());
  ASSERT_TRUE(heap->CommitOp(0).ok());
  EXPECT_EQ(rt.counters().shadowcpy, copies_before);
}

// ---- Deferred frees across mechanisms --------------------------------------------

TEST(DeferredFreeTest, CheckpointFreesWaitForEpoch) {
  Runtime rt(Opts());
  PoolArena arena;
  auto heap = MakeHeap(rt, arena, Mechanism::kCheckpointing, /*epoch_ops=*/4);
  auto block = heap->Alloc(0, 64);
  ASSERT_TRUE(block.ok());
  // Free inside op 1 of the epoch: the block must stay unavailable until the
  // epoch closes (op 4), because an epoch rollback could resurrect it.
  for (int op = 0; op < 4; ++op) {
    ASSERT_TRUE(heap->BeginOp(0).ok());
    ASSERT_TRUE(heap->Store<std::uint64_t>(0, heap->root(), op).ok());
    if (op == 0) {
      ASSERT_TRUE(heap->Free(0, *block, 64).ok());
    }
    if (op < 3) {
      auto again = heap->Alloc(0, 64);
      ASSERT_TRUE(again.ok());
      EXPECT_NE(*again, *block) << "op " << op;
    }
    ASSERT_TRUE(heap->CommitOp(0).ok());
  }
  // Epoch closed at op 4: the block is reusable now.
  bool reused = false;
  for (int i = 0; i < 8 && !reused; ++i) {
    auto again = heap->Alloc(0, 64);
    ASSERT_TRUE(again.ok());
    reused = *again == *block;
  }
  EXPECT_TRUE(reused);
}

}  // namespace
}  // namespace nearpm
