// Tests for src/repl: replica-group routing and promotion, both replication
// protocols (primary-backup and one-sided redo), deterministic failover from
// the durable log, full-cluster recovery, backpressure, the threaded path,
// the sync state machine under replica-interleaved signal orders, and the
// fabric/node metrics export.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "src/ndp/sync_machine.h"
#include "src/repl/service.h"

namespace nearpm {
namespace repl {
namespace {

std::vector<std::uint8_t> Value(std::uint64_t tag, std::uint32_t size = 16) {
  std::vector<std::uint8_t> v(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    v[i] = static_cast<std::uint8_t>(tag + i);
  }
  return v;
}

ReplOptions SmallOptions(int groups, int replicas,
                         ReplProtocol protocol = ReplProtocol::kPrimaryBackup) {
  ReplOptions ro;
  ro.groups = groups;
  ro.replicas = replicas;
  ro.protocol = protocol;
  ro.workers_per_shard = 1;
  ro.queue_capacity = 64;
  ro.batch_max = 4;
  ro.table_slots = 128;
  ro.value_size = 16;
  return ro;
}

// A key owned by `group` under the given router (search from `from`).
std::uint64_t KeyInGroup(const serve::ShardRouter& router, int group,
                         std::uint64_t from = 100) {
  std::uint64_t key = from;
  while (router.ShardFor(key) != group) {
    ++key;
  }
  return key;
}

// ---- Replica-group routing --------------------------------------------------

TEST(ReplRouterTest, NodeAddressingIsDense) {
  serve::ShardRouter router(3, 2);
  EXPECT_EQ(router.num_nodes(), 6);
  EXPECT_EQ(router.NodeFor(0, 0), 0);
  EXPECT_EQ(router.NodeFor(0, 1), 1);
  EXPECT_EQ(router.NodeFor(2, 1), 5);
  EXPECT_EQ(router.GroupOf(5), 2);
  EXPECT_EQ(router.ReplicaOf(5), 1);
  EXPECT_EQ(router.GroupOf(1), 0);
}

TEST(ReplRouterTest, PromotionReroutesTheGroup) {
  serve::ShardRouter router(2, 3);
  EXPECT_EQ(router.PrimaryReplica(1), 0);
  EXPECT_EQ(router.PrimaryNodeFor(1), 3);
  router.Promote(1, 2);
  EXPECT_EQ(router.PrimaryReplica(1), 2);
  EXPECT_EQ(router.PrimaryNodeFor(1), 5);
  EXPECT_EQ(router.PrimaryNodeFor(0), 0) << "other groups are unaffected";
}

// ---- Sync state machine under replica-interleaved signal orders -------------

TEST(SyncMachineReplTest, RemoteBeforeLocalCompletes) {
  SyncStateMachine m(2);
  ASSERT_TRUE(m.ReceiveCommand().ok());
  EXPECT_TRUE(m.ReceiveRemoteComplete(0).ok())
      << "a fast peer may signal before the local apply finishes";
  EXPECT_FALSE(m.AllComplete());
  EXPECT_TRUE(m.ReceiveLocalComplete().ok());
  EXPECT_TRUE(m.AllComplete());
}

TEST(SyncMachineReplTest, DuplicateAckAfterCompletionIsRejected) {
  // A backup re-sends its ack after the group already completed (e.g. the
  // retransmit races a promotion): the machine must reject it, not re-enter
  // the executing state.
  SyncStateMachine m(2);
  ASSERT_TRUE(m.ReceiveCommand().ok());
  ASSERT_TRUE(m.ReceiveLocalComplete().ok());
  ASSERT_TRUE(m.ReceiveRemoteComplete(0).ok());
  ASSERT_TRUE(m.AllComplete());
  const Status dup = m.ReceiveRemoteComplete(0);
  EXPECT_EQ(dup.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(m.AllComplete()) << "the duplicate must not change state";
}

TEST(SyncMachineReplTest, DuplicateAckWhileExecutingIsRejected) {
  SyncStateMachine m(3);
  ASSERT_TRUE(m.ReceiveCommand().ok());
  ASSERT_TRUE(m.ReceiveRemoteComplete(0).ok());
  const Status dup = m.ReceiveRemoteComplete(0);
  EXPECT_EQ(dup.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(m.remotes_pending(), 1) << "peer 1 is still outstanding";
}

TEST(SyncMachineReplTest, StalePrimarySignalAfterResetIsRejected) {
  // Failover abandons the in-flight command (Reset); signals from the
  // deposed primary arriving afterwards are stale and must be rejected.
  SyncStateMachine m(2);
  ASSERT_TRUE(m.ReceiveCommand().ok());
  m.Reset();
  EXPECT_EQ(m.ReceiveLocalComplete().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(m.ReceiveRemoteComplete(0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(m.AllComplete());
  // The next command starts a clean round.
  EXPECT_TRUE(m.ReceiveCommand().ok());
  EXPECT_TRUE(m.ReceiveLocalComplete().ok());
  EXPECT_TRUE(m.ReceiveRemoteComplete(0).ok());
  EXPECT_TRUE(m.AllComplete());
}

TEST(SyncMachineReplTest, OutOfRangePeerIndexIsRejected) {
  SyncStateMachine m(2);
  ASSERT_TRUE(m.ReceiveCommand().ok());
  EXPECT_EQ(m.ReceiveRemoteComplete(5).code(), StatusCode::kInvalidArgument);
}

// ---- Replicated commit ------------------------------------------------------

class ReplProtocolTest : public ::testing::TestWithParam<ReplProtocol> {};

TEST_P(ReplProtocolTest, PutReplicatesToEveryReplica) {
  auto svc_or = ReplicatedKvService::Create(SmallOptions(2, 2, GetParam()));
  ASSERT_TRUE(svc_or.ok()) << svc_or.status().ToString();
  ReplicatedKvService& svc = **svc_or;

  KvPair pair;
  pair.key = 42;
  pair.value = Value(7);
  ASSERT_TRUE(svc.ExecuteReplicatedTxn({pair}).ok());

  const int g = svc.router().ShardFor(pair.key);
  for (int r = 0; r < 2; ++r) {
    auto image = svc.DumpReplica(g, r);
    ASSERT_TRUE(image.ok());
    ASSERT_EQ(image->size(), 1u) << "replica " << r;
    EXPECT_EQ((*image)[0].key, pair.key);
    EXPECT_EQ((*image)[0].value, pair.value);
  }
  EXPECT_GT(svc.fabric().total_messages(), 0u)
      << "replication must ride the fabric";
}

TEST_P(ReplProtocolTest, CrossGroupTxnAppliesOnEveryReplica) {
  auto svc_or = ReplicatedKvService::Create(SmallOptions(2, 2, GetParam()));
  ASSERT_TRUE(svc_or.ok());
  ReplicatedKvService& svc = **svc_or;

  std::vector<KvPair> pairs;
  for (int g = 0; g < 2; ++g) {
    KvPair pair;
    pair.key = KeyInGroup(svc.router(), g, 200 + 50 * g);
    pair.value = Value(g + 1);
    pairs.push_back(std::move(pair));
  }
  ASSERT_TRUE(svc.ExecuteReplicatedTxn(pairs).ok());

  for (const KvPair& pair : pairs) {
    const int g = svc.router().ShardFor(pair.key);
    for (int r = 0; r < 2; ++r) {
      Shard& shard = svc.node(g, r);
      std::lock_guard lock(shard.mu());
      auto got = shard.Get(shard.TxnTid(), pair.key);
      ASSERT_TRUE(got.ok()) << "group " << g << " replica " << r;
      EXPECT_EQ(*got, pair.value);
    }
  }
}

TEST_P(ReplProtocolTest, RecoverAllAfterFullClusterCrash) {
  auto svc_or = ReplicatedKvService::Create(SmallOptions(2, 2, GetParam()));
  ASSERT_TRUE(svc_or.ok());
  ReplicatedKvService& svc = **svc_or;

  std::vector<KvPair> pairs;
  for (std::uint64_t key = 300; key < 306; ++key) {
    KvPair pair;
    pair.key = key;
    pair.value = Value(key);
    ASSERT_TRUE(svc.ExecuteReplicatedTxn({pair}).ok());
    pairs.push_back(std::move(pair));
  }

  std::vector<int> all_nodes;
  for (int n = 0; n < svc.num_nodes(); ++n) {
    all_nodes.push_back(n);
  }
  svc.CrashReplicas(all_nodes, std::vector<CrashPlan>(all_nodes.size()));
  for (int n = 0; n < svc.num_nodes(); ++n) {
    EXPECT_FALSE(svc.alive(n));
  }
  ASSERT_TRUE(svc.RecoverAll().ok());

  for (const KvPair& pair : pairs) {
    const int g = svc.router().ShardFor(pair.key);
    for (int r = 0; r < 2; ++r) {
      Shard& shard = svc.node(g, r);
      std::lock_guard lock(shard.mu());
      auto got = shard.Get(shard.TxnTid(), pair.key);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, pair.value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, ReplProtocolTest,
                         ::testing::Values(ReplProtocol::kPrimaryBackup,
                                           ReplProtocol::kOneSidedRedo),
                         [](const auto& info) {
                           return std::string(ReplProtocolName(info.param));
                         });

// ---- Failover ---------------------------------------------------------------

TEST(ReplFailoverTest, PromotedBackupServesAckedData) {
  auto svc_or = ReplicatedKvService::Create(SmallOptions(2, 2));
  ASSERT_TRUE(svc_or.ok());
  ReplicatedKvService& svc = **svc_or;

  KvPair pair;
  pair.key = KeyInGroup(svc.router(), 0);
  pair.value = Value(9);
  ASSERT_TRUE(svc.ExecuteReplicatedTxn({pair}).ok());

  const int primary = svc.router().PrimaryNodeFor(0);
  svc.CrashReplicas({primary}, {CrashPlan{}});
  auto down = svc.Read(pair.key);
  EXPECT_EQ(down.status().code(), StatusCode::kUnavailable)
      << "no failover yet: the dead primary still owns the route";

  ASSERT_TRUE(svc.Failover(0).ok());
  EXPECT_EQ(svc.router().PrimaryReplica(0), 1)
      << "the lowest live replica is promoted deterministically";
  EXPECT_EQ(svc.router().PrimaryNodeFor(0), svc.router().NodeFor(0, 1));

  auto got = svc.Read(pair.key);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, pair.value);
  EXPECT_EQ(svc.Stats().failovers, 1u);
}

TEST(ReplFailoverTest, PromotionReplaysSurvivingIntentFromTheDurableLog) {
  // The transaction stops after replication: the backup holds a durable
  // copy of the record but never applied it. When the primary dies, the
  // promoted backup must replay its log before taking traffic, so the
  // acked-at-replicate record is served, not lost.
  auto svc_or = ReplicatedKvService::Create(SmallOptions(2, 2));
  ASSERT_TRUE(svc_or.ok());
  ReplicatedKvService& svc = **svc_or;

  KvPair pair;
  pair.key = KeyInGroup(svc.router(), 1);
  pair.value = Value(13);
  ReplStop stop;
  stop.phase = ReplStopPhase::kAfterReplicate;
  const Status stopped = svc.ExecuteReplicatedTxn({pair}, stop);
  ASSERT_EQ(stopped.code(), StatusCode::kUnavailable);

  svc.CrashReplicas({svc.router().PrimaryNodeFor(1)}, {CrashPlan{}});
  ASSERT_TRUE(svc.Failover(1).ok());
  auto got = svc.Read(pair.key);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, pair.value);
  EXPECT_GE(svc.Stats().intent_redos, 1u);
}

TEST(ReplFailoverTest, FailoverWithNoLiveReplicaReportsUnavailable) {
  auto svc_or = ReplicatedKvService::Create(SmallOptions(1, 2));
  ASSERT_TRUE(svc_or.ok());
  ReplicatedKvService& svc = **svc_or;
  svc.CrashReplicas({0, 1}, std::vector<CrashPlan>(2));
  EXPECT_EQ(svc.Failover(0).code(), StatusCode::kUnavailable);
}

// ---- Queue path, backpressure, threading ------------------------------------

TEST(ReplServiceTest, SubmitPumpServesPutsAndGets) {
  auto svc_or = ReplicatedKvService::Create(SmallOptions(2, 2));
  ASSERT_TRUE(svc_or.ok());
  ReplicatedKvService& svc = **svc_or;

  std::vector<std::future<ServeResult>> puts;
  for (std::uint64_t key = 500; key < 510; ++key) {
    ServeRequest req;
    req.kind = RequestKind::kPut;
    req.key = key;
    req.value = Value(key);
    auto fut = svc.Submit(std::move(req));
    ASSERT_TRUE(fut.ok());
    puts.push_back(std::move(*fut));
  }
  EXPECT_GT(svc.Pump(), 0u);
  for (auto& fut : puts) {
    EXPECT_TRUE(fut.get().status.ok());
  }

  ServeRequest get;
  get.kind = RequestKind::kGet;
  get.key = 505;
  auto fut = svc.Submit(std::move(get));
  ASSERT_TRUE(fut.ok());
  svc.Pump();
  ServeResult result = fut->get();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.value, Value(505));

  const ReplStats stats = svc.Stats();
  EXPECT_EQ(stats.puts, 10u);
  EXPECT_EQ(stats.gets, 1u);
  EXPECT_EQ(stats.completed, 11u);
  EXPECT_GT(stats.net_messages, 0u);
}

TEST(ReplServiceTest, FullQueueRejectsWithBackpressure) {
  ReplOptions ro = SmallOptions(1, 2);
  ro.queue_capacity = 2;
  auto svc_or = ReplicatedKvService::Create(ro);
  ASSERT_TRUE(svc_or.ok());
  ReplicatedKvService& svc = **svc_or;

  int rejected = 0;
  for (std::uint64_t key = 0; key < 8; ++key) {
    ServeRequest req;
    req.kind = RequestKind::kPut;
    req.key = key;
    req.value = Value(key);
    auto fut = svc.Submit(std::move(req));
    if (!fut.ok()) {
      EXPECT_EQ(fut.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0) << "a full group queue must push back";
  svc.Pump();
}

TEST(ReplServiceTest, ThreadedWorkersServeReplicatedWrites) {
  auto svc_or = ReplicatedKvService::Create(SmallOptions(2, 2));
  ASSERT_TRUE(svc_or.ok());
  ReplicatedKvService& svc = **svc_or;

  svc.Start();
  std::vector<std::future<ServeResult>> futures;
  for (std::uint64_t key = 700; key < 716; ++key) {
    ServeRequest req;
    req.kind = RequestKind::kPut;
    req.key = key;
    req.value = Value(key);
    auto fut = svc.Submit(std::move(req));
    ASSERT_TRUE(fut.ok());
    futures.push_back(std::move(*fut));
  }
  for (auto& fut : futures) {
    EXPECT_TRUE(fut.get().status.ok());
  }
  svc.Stop();
  EXPECT_EQ(svc.Stats().completed, 16u);

  // Every write is durable on both replicas of its group.
  for (std::uint64_t key = 700; key < 716; ++key) {
    const int g = svc.router().ShardFor(key);
    for (int r = 0; r < 2; ++r) {
      Shard& shard = svc.node(g, r);
      std::lock_guard lock(shard.mu());
      auto got = shard.Get(shard.TxnTid(), key);
      ASSERT_TRUE(got.ok()) << "key " << key << " replica " << r;
      EXPECT_EQ(*got, Value(key));
    }
  }
}

// ---- Observability ----------------------------------------------------------

TEST(ReplServiceTest, ExportsNodeAndFabricResourceMetrics) {
  auto svc_or = ReplicatedKvService::Create(SmallOptions(2, 2));
  ASSERT_TRUE(svc_or.ok());
  ReplicatedKvService& svc = **svc_or;

  KvPair pair;
  pair.key = 42;
  pair.value = Value(1);
  ASSERT_TRUE(svc.ExecuteReplicatedTxn({pair}).ok());
  svc.ExportResourceMetrics();

  const std::string prom = svc.metrics().ToPrometheus("repl");
  EXPECT_NE(prom.find("node=\"fabric\""), std::string::npos)
      << "fabric link duty cycles must be published:\n" << prom;
  EXPECT_NE(prom.find("node=\"0\""), std::string::npos);
  // Replica track names carry '/' and spaces; the exposition must still be
  // well-formed (every label value quoted, no raw newlines inside quotes).
  EXPECT_EQ(prom.find("\n\""), std::string::npos);

  const auto& counters = svc.metrics().counters();
  EXPECT_TRUE(counters.contains("net_msgs_intent_ship") ||
              counters.contains("net_msgs_redo_write"))
      << "fabric message counters must fold into the service registry";
}

TEST(ReplServiceTest, PpoCleanOnTheHappyPath) {
  auto svc_or = ReplicatedKvService::Create(SmallOptions(2, 2));
  ASSERT_TRUE(svc_or.ok());
  ReplicatedKvService& svc = **svc_or;
  for (std::uint64_t key = 900; key < 906; ++key) {
    KvPair pair;
    pair.key = key;
    pair.value = Value(key);
    ASSERT_TRUE(svc.ExecuteReplicatedTxn({pair}).ok());
  }
  std::string report;
  EXPECT_EQ(svc.PpoViolations(&report), 0u) << report;
}

TEST(ReplServiceTest, ProtocolNamesRoundTrip) {
  EXPECT_STREQ(ReplProtocolName(ReplProtocol::kPrimaryBackup), "pb");
  EXPECT_STREQ(ReplProtocolName(ReplProtocol::kOneSidedRedo), "redo");
  auto pb = ReplProtocolFromName("pb");
  ASSERT_TRUE(pb.ok());
  EXPECT_EQ(*pb, ReplProtocol::kPrimaryBackup);
  auto redo = ReplProtocolFromName("redo");
  ASSERT_TRUE(redo.ok());
  EXPECT_EQ(*redo, ReplProtocol::kOneSidedRedo);
  EXPECT_FALSE(ReplProtocolFromName("chain").ok());
}

}  // namespace
}  // namespace repl
}  // namespace nearpm
