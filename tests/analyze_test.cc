// PM-Sanitizer tests: one deliberately buggy mini-workload per rule (each
// must fire exactly its rule), clean runs over the mechanism matrix, the
// suppression round-trip, output rendering (SARIF shape), the dirty-range
// merge that de-duplicates provider persists, and offline trace analysis
// equivalence.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analyze/sanitizer.h"
#include "src/analyze/trace_analyzer.h"
#include "src/common/rng.h"
#include "src/core/runtime.h"
#include "src/fuzz/crash_fuzzer.h"
#include "src/pmlib/heap.h"

namespace nearpm {
namespace {

using analyze::PmSanitizer;
using analyze::RuleId;

RuntimeOptions Opts(bool enforce_ppo = true,
                    ExecMode mode = ExecMode::kNdpMultiDelayed) {
  RuntimeOptions o;
  o.mode = mode;
  o.pm_size = 16ull << 20;
  o.enforce_ppo = enforce_ppo;
  return o;
}

// Asserts that exactly `rule` fired (>= 1 occurrence) and nothing else did.
void ExpectOnly(const PmSanitizer& san, RuleId rule) {
  for (int i = 0; i < analyze::kNumRules; ++i) {
    const auto r = static_cast<RuleId>(i);
    if (r == rule) {
      EXPECT_GE(san.sink().count(r), 1u) << analyze::RuleIdString(r);
    } else {
      EXPECT_EQ(san.sink().count(r), 0u) << analyze::RuleIdString(r);
    }
  }
}

std::vector<std::uint8_t> Bytes(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i);
  }
  return out;
}

struct Fixture {
  explicit Fixture(const RuntimeOptions& opts) : rt(opts) {
    rt.AttachSanitizer(&san);
    auto p = rt.RegisterPool(0, 8ull << 20);
    EXPECT_TRUE(p.ok());
    pool = *p;
  }
  PmAddr slot(int i) const {
    return (1ull << 20) + static_cast<PmAddr>(i) * kSlotSize;
  }
  PmSanitizer san;
  Runtime rt;
  PoolId pool = 0;
};

// ---- NPM001: durable-scope read of unpersisted data -------------------------

TEST(PmSanitizerRules, Npm001DurableReadOfUnpersistedData) {
  Fixture f(Opts());
  const auto data = Bytes(64, 1);
  f.rt.Write(0, 4096, data);  // never persisted
  f.san.BeginDurableScope();
  std::vector<std::uint8_t> out(64);
  f.rt.Read(0, 4096, out);
  f.san.EndDurableScope();
  ExpectOnly(f.san, RuleId::kNpm001);
}

TEST(PmSanitizerRules, Npm001SilentWhenPersistedFirst) {
  Fixture f(Opts());
  const auto data = Bytes(64, 1);
  f.rt.Write(0, 4096, data);
  f.rt.Persist(0, 4096, 64);
  f.san.BeginDurableScope();
  std::vector<std::uint8_t> out(64);
  f.rt.Read(0, 4096, out);
  f.san.EndDurableScope();
  EXPECT_EQ(f.san.sink().total_unsuppressed(), 0u);
}

// ---- NPM002: doorbell before operand persist --------------------------------

TEST(PmSanitizerRules, Npm002DoorbellBeforeOperandPersist) {
  // Only reachable with PPO off: the enforced runtime writes pending operand
  // lines back (software-managed coherence) before ringing the doorbell.
  Fixture f(Opts(/*enforce_ppo=*/false));
  const auto data = Bytes(256, 3);
  f.rt.Write(0, 4096, data);  // dirty in the store buffer
  EXPECT_TRUE(f.rt.RawCopy(f.pool, 0, 4096, 64 * 1024, 256,
                           /*wait=*/true).ok());
  ExpectOnly(f.san, RuleId::kNpm002);
}

TEST(PmSanitizerRules, Npm002SilentUnderPpo) {
  // Same program with PPO enforced: CoherenceWriteback cleans the operands,
  // so the doorbell is sound and nothing fires.
  Fixture f(Opts(/*enforce_ppo=*/true));
  const auto data = Bytes(256, 3);
  f.rt.Write(0, 4096, data);
  EXPECT_TRUE(f.rt.RawCopy(f.pool, 0, 4096, 64 * 1024, 256,
                           /*wait=*/true).ok());
  EXPECT_EQ(f.san.sink().total_unsuppressed(), 0u);
}

// ---- NPM003: CPU read racing an in-flight NDP write -------------------------

TEST(PmSanitizerRules, Npm003ReadRacesInflightNdpWrite) {
  Fixture f(Opts(/*enforce_ppo=*/false));
  const auto data = Bytes(256, 5);
  f.rt.Write(0, 4096, data);
  f.rt.Persist(0, 4096, 256);  // operands are clean: no NPM002
  EXPECT_TRUE(f.rt.RawCopy(f.pool, 0, 4096, 64 * 1024, 256,
                           /*wait=*/false).ok());
  std::vector<std::uint8_t> out(256);
  f.rt.Read(0, 64 * 1024, out);  // destination still being written
  ExpectOnly(f.san, RuleId::kNpm003);
}

TEST(PmSanitizerRules, Npm003SilentUnderPpo) {
  // The host-access barrier retires the conflicting request before the read.
  Fixture f(Opts(/*enforce_ppo=*/true));
  const auto data = Bytes(256, 5);
  f.rt.Write(0, 4096, data);
  f.rt.Persist(0, 4096, 256);
  EXPECT_TRUE(f.rt.RawCopy(f.pool, 0, 4096, 64 * 1024, 256,
                           /*wait=*/false).ok());
  std::vector<std::uint8_t> out(256);
  f.rt.Read(0, 64 * 1024, out);
  EXPECT_EQ(f.san.sink().total_unsuppressed(), 0u);
}

// ---- NPM004: commit racing un-synchronized cross-device requests ------------

TEST(PmSanitizerRules, Npm004CommitWithoutCrossDeviceSync) {
  Fixture f(Opts(/*enforce_ppo=*/false));
  // A log write on device 0 (stripe 256: even stripes land on device 0).
  const auto data = Bytes(256, 7);
  f.rt.Write(0, 0, data);
  f.rt.Persist(0, 0, 256);
  const PmAddr slot_dev0 = 1ull << 20;  // stripe 4096 -> device 0
  EXPECT_TRUE(
      f.rt.UndologCreate(f.pool, 0, /*tx_id=*/1, 0, 256, slot_dev0).ok());
  // Commit a slot header on device 1 while the device-0 log write is still
  // in flight and no sync marker separates them.
  const PmAddr slot_dev1 = (1ull << 20) + 256;  // stripe 4097 -> device 1
  const std::vector<PmAddr> slots{slot_dev1};
  EXPECT_TRUE(f.rt.CommitLog(f.pool, 0, slots).ok());
  ExpectOnly(f.san, RuleId::kNpm004);
}

TEST(PmSanitizerRules, Npm004SilentWithDelayedSync) {
  // PPO's delayed synchronization plants a marker before the commit, so the
  // in-flight log write is ordered and the commit is sound.
  Fixture f(Opts(/*enforce_ppo=*/true));
  const auto data = Bytes(256, 7);
  f.rt.Write(0, 0, data);
  f.rt.Persist(0, 0, 256);
  EXPECT_TRUE(
      f.rt.UndologCreate(f.pool, 0, /*tx_id=*/1, 0, 256, 1ull << 20).ok());
  const std::vector<PmAddr> slots{(1ull << 20) + 256};
  EXPECT_TRUE(f.rt.CommitLog(f.pool, 0, slots).ok());
  EXPECT_EQ(f.san.sink().total_unsuppressed(), 0u);
}

// ---- NPM005: redundant clwb/fence -------------------------------------------

TEST(PmSanitizerRules, Npm005RedundantPersist) {
  Fixture f(Opts());
  const auto data = Bytes(64, 9);
  f.rt.Write(0, 4096, data);
  f.rt.Persist(0, 4096, 64);
  f.rt.Persist(0, 4096, 64);  // nothing left to flush
  ExpectOnly(f.san, RuleId::kNpm005);
}

// ---- NPM006: unflushed lines at a durability point --------------------------

TEST(PmSanitizerRules, Npm006UnflushedLineAtDurablePoint) {
  Fixture f(Opts());
  PoolArena arena(2ull << 20);
  HeapOptions ho;
  ho.mechanism = Mechanism::kLogging;
  auto heap = PersistentHeap::Create(f.rt, arena, ho);
  ASSERT_TRUE(heap.ok());
  ASSERT_TRUE((*heap)->BeginOp(0).ok());
  ASSERT_TRUE((*heap)->Store<std::uint64_t>(0, (*heap)->root(), 42).ok());
  // The bug: a store issued past the heap, invisible to the provider's
  // commit-time persist. The mechanism's durable point does not cover it.
  f.rt.Store<std::uint64_t>(0, (*heap)->root() + 8 * kCacheLineSize, 43);
  ASSERT_TRUE((*heap)->CommitOp(0).ok());
  ExpectOnly(f.san, RuleId::kNpm006);
}

TEST(PmSanitizerRules, Npm006UnflushedLineAtFinish) {
  Fixture f(Opts());
  const auto data = Bytes(64, 11);
  f.rt.Write(0, 4096, data);  // outside any operation, never persisted
  f.san.Finish(f.rt.Now(0));
  ExpectOnly(f.san, RuleId::kNpm006);
}

TEST(PmSanitizerRules, Npm007DoorbellBeforeRecordPersisted) {
  // One-sided redo replication: the primary wrote the redo record into the
  // backup's intent region but rang the replay doorbell before persisting
  // it -- the ack the doorbell implies races the record.
  PmSanitizer san;
  const AddrRange record{4096, 4096 + 128};
  san.OnCpuWrite(0, record, /*now=*/10, {});
  san.OnReplDoorbell(0, record, /*now=*/20);
  ExpectOnly(san, RuleId::kNpm007);
}

TEST(PmSanitizerRules, Npm007SilentWhenRecordPersistedFirst) {
  PmSanitizer san;
  const AddrRange record{4096, 4096 + 128};
  san.OnCpuWrite(0, record, /*now=*/10, {});
  san.OnFlush(0, record, /*now=*/20, {});
  san.OnFence(0);
  san.OnReplDoorbell(0, record, /*now=*/30);
  EXPECT_EQ(san.sink().count(RuleId::kNpm007), 0u);
  EXPECT_EQ(san.sink().total_unsuppressed(), 0u);
}

TEST(PmSanitizerRules, Npm007CountsEachHazardousDoorbell) {
  PmSanitizer san;
  const AddrRange a{4096, 4096 + 64};
  const AddrRange b{8192, 8192 + 64};
  san.OnCpuWrite(0, a, 10, {});
  san.OnCpuWrite(0, b, 11, {});
  san.OnReplDoorbell(0, a, 20);
  san.OnReplDoorbell(0, b, 21);
  EXPECT_EQ(san.sink().count(RuleId::kNpm007), 2u);
}

// ---- NPM004 deferred-maintenance exemption boundary -------------------------

TEST(PmSanitizerEdge, Npm004DeferredMaintenanceSliceIsExempt) {
  // The only in-flight work on the other device is a maintenance (deferred
  // log-deletion) slice: commits racing each other's deletions is not the
  // hazard NPM004 targets, so the commit-class doorbell stays clean.
  PmSanitizer san;
  san.OnDeviceExecute(1, /*seq=*/7, {4096, 4096 + 64}, /*completion=*/500,
                      /*deferred=*/true);
  san.OnNdpCommand(0, {}, {8192, 8192 + 64}, /*now=*/100,
                   /*commit_class=*/true, /*touched_devices=*/1u << 0, {});
  EXPECT_EQ(san.sink().count(RuleId::kNpm004), 0u);
}

TEST(PmSanitizerEdge, Npm004ExemptionIsPerSliceNotPerDevice) {
  // A deferred slice on the device does not shield a *unit* (log-write)
  // slice that is also still in flight there.
  PmSanitizer san;
  san.OnDeviceExecute(1, /*seq=*/7, {4096, 4096 + 64}, 500,
                      /*deferred=*/true);
  san.OnDeviceExecute(1, /*seq=*/8, {4160, 4160 + 64}, 600,
                      /*deferred=*/false);
  san.OnNdpCommand(0, {}, {8192, 8192 + 64}, 100, true, 1u << 0, {});
  EXPECT_EQ(san.sink().count(RuleId::kNpm004), 1u);
}

TEST(PmSanitizerEdge, Npm004SyncMarkerBoundary) {
  // A request issued *before* the latest sync marker belongs to an already
  // synchronized generation: the commit is ordered behind it by the delayed
  // sync, so only same-generation requests (after_sync == last marker) fire.
  PmSanitizer san;
  san.OnDeviceExecute(1, /*seq=*/7, {4096, 4096 + 64}, 500);
  san.OnSyncMarker(1);
  san.OnNdpCommand(0, {}, {8192, 8192 + 64}, 100, true, 1u << 0, {});
  EXPECT_EQ(san.sink().count(RuleId::kNpm004), 0u);
  // A request issued after the marker is un-synchronized again.
  san.OnDeviceExecute(1, /*seq=*/9, {4224, 4224 + 64}, 700);
  san.OnNdpCommand(0, {}, {8192, 8192 + 64}, 200, true, 1u << 0, {});
  EXPECT_EQ(san.sink().count(RuleId::kNpm004), 1u);
}

TEST(PmSanitizerEdge, Npm004SyncCompleteRetiresEarlierGenerations) {
  // OnSyncComplete retires every request issued before the completed sync;
  // a commit after that must be clean even without per-request retires.
  PmSanitizer san;
  san.OnDeviceExecute(1, /*seq=*/7, {4096, 4096 + 64}, 500);
  san.OnSyncMarker(1);
  san.OnDeviceExecute(1, /*seq=*/8, {4160, 4160 + 64}, 600);
  san.OnSyncComplete(1);  // retires seq=7 (generation 0), not seq=8
  san.OnSyncMarker(2);
  san.OnNdpCommand(0, {}, {8192, 8192 + 64}, 700, true, 1u << 0, {});
  EXPECT_EQ(san.sink().count(RuleId::kNpm004), 0u);
}

TEST(PmSanitizerEdge, Npm004ParticipatingDeviceIsExempt) {
  // The command's own target devices order the commit through their
  // dispatch queues; only *other* devices' in-flight work fires.
  PmSanitizer san;
  san.OnDeviceExecute(1, /*seq=*/7, {4096, 4096 + 64}, 500);
  san.OnNdpCommand(0, {}, {8192, 8192 + 64}, 100, true,
                   /*touched_devices=*/(1u << 0) | (1u << 1), {});
  EXPECT_EQ(san.sink().count(RuleId::kNpm004), 0u);
}

// ---- NPM007 at the persist boundary -----------------------------------------

TEST(PmSanitizerEdge, Npm007FiresBetweenFlushAndFence) {
  // clwb without the fence is not durability: a doorbell in the window
  // between the flush and the fence still races the record.
  PmSanitizer san;
  const AddrRange record{4096, 4096 + 64};
  san.OnCpuWrite(0, record, 10, {});
  san.OnFlush(0, record, 20, {});
  san.OnReplDoorbell(0, record, 25);
  EXPECT_EQ(san.sink().count(RuleId::kNpm007), 1u);
  // After the fence the same doorbell is clean.
  san.OnFence(0);
  san.OnReplDoorbell(0, record, 30);
  EXPECT_EQ(san.sink().count(RuleId::kNpm007), 1u);
}

TEST(PmSanitizerEdge, Npm007SplitsExactlyAtLineBoundary) {
  // Two dirty lines; only the first is persisted. A doorbell over the
  // persisted line is clean, one over the still-dirty neighbour fires --
  // the line accounting must not bleed across the 64-byte boundary.
  PmSanitizer san;
  san.OnCpuWrite(0, {4096, 4096 + 128}, 10, {});
  san.OnFlush(0, {4096, 4096 + 64}, 20, {});
  san.OnFence(0);
  san.OnReplDoorbell(0, {4096, 4096 + 64}, 30);
  EXPECT_EQ(san.sink().count(RuleId::kNpm007), 0u);
  san.OnReplDoorbell(0, {4096 + 64, 4096 + 128}, 31);
  EXPECT_EQ(san.sink().count(RuleId::kNpm007), 1u);
}

TEST(PmSanitizerEdge, Npm007RangeEndingAtDirtyLineIsClean) {
  // The doorbell range ends exactly where the dirty line starts: half-open
  // ranges must not count the neighbour.
  PmSanitizer san;
  san.OnCpuWrite(0, {4096, 4096 + 64}, 10, {});
  san.OnReplDoorbell(0, {4096 - 64, 4096}, 20);
  EXPECT_EQ(san.sink().count(RuleId::kNpm007), 0u);
}

// ---- Clean runs -------------------------------------------------------------

class CleanHeapRun : public ::testing::TestWithParam<Mechanism> {};

TEST_P(CleanHeapRun, MechanismRoundIsAnalyzerClean) {
  Fixture f(Opts());
  PoolArena arena(2ull << 20);
  HeapOptions ho;
  ho.mechanism = GetParam();
  ho.ckpt_epoch_ops = 4;
  auto heap = PersistentHeap::Create(f.rt, arena, ho);
  ASSERT_TRUE(heap.ok());
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*heap)->BeginOp(0).ok());
    ASSERT_TRUE(
        (*heap)->Store<std::uint64_t>(0, (*heap)->root() + 8 * i, i).ok());
    ASSERT_TRUE((*heap)->CommitOp(0).ok());
  }
  f.rt.DrainDevices(0);
  f.san.Finish(f.rt.Now(0));
  EXPECT_EQ(f.san.sink().total_unsuppressed(), 0u)
      << f.san.sink().RenderText();
  EXPECT_GT(f.san.stats().writes, 0u);
  EXPECT_GT(f.san.stats().fences, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, CleanHeapRun,
                         ::testing::Values(Mechanism::kLogging,
                                           Mechanism::kRedoLogging,
                                           Mechanism::kCheckpointing,
                                           Mechanism::kShadowPaging),
                         [](const auto& info) {
                           return std::string(MechanismName(info.param));
                         });

TEST(PmSanitizerClean, CrashRecoveryRoundTrip) {
  Fixture f(Opts());
  PoolArena arena(2ull << 20);
  HeapOptions ho;
  ho.mechanism = Mechanism::kLogging;
  auto heap = PersistentHeap::Create(f.rt, arena, ho);
  ASSERT_TRUE(heap.ok());
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE((*heap)->BeginOp(0).ok());
    ASSERT_TRUE(
        (*heap)->Store<std::uint64_t>(0, (*heap)->root() + 8 * i, i).ok());
    ASSERT_TRUE((*heap)->CommitOp(0).ok());
  }
  CrashPlan plan;  // all pending lines dropped
  f.rt.InjectCrashAt(plan);
  (*heap)->DropVolatile();
  // Recovery runs inside the sanitizer's durable scope; it must only read
  // persisted state, and the post-crash shadow map is empty by definition.
  ASSERT_TRUE((*heap)->Recover().ok());
  f.san.Finish(f.rt.Now(0));
  EXPECT_EQ(f.san.sink().total_unsuppressed(), 0u)
      << f.san.sink().RenderText();
}

// ---- Fuzzer integration -----------------------------------------------------

TEST(PmSanitizerFuzz, SoundCaseIsClean) {
  PmSanitizer san;
  fuzz::FuzzConfig config;
  config.sanitizer = &san;
  const fuzz::CrashFuzzer fuzzer(config);
  fuzz::FuzzCase c;
  c.seed = 1;
  c.total_ops = 4;
  c.crash_step = 2;
  const fuzz::CaseResult result = fuzzer.Run(c);
  EXPECT_TRUE(result.ok()) << result.detail;
  EXPECT_EQ(san.sink().total_unsuppressed(), 0u) << san.sink().RenderText();
  EXPECT_GT(san.stats().writes, 0u);
}

TEST(PmSanitizerFuzz, PpoAblationFires) {
  PmSanitizer san;
  fuzz::FuzzConfig config;
  config.enforce_ppo = false;
  config.sanitizer = &san;
  const fuzz::CrashFuzzer fuzzer(config);
  fuzz::FuzzCase c;
  c.seed = 1;
  c.total_ops = 4;
  c.crash_step = 2;
  (void)fuzzer.Run(c);  // the oracle may or may not flag this exact schedule
  EXPECT_GE(san.sink().total_unsuppressed(), 1u);
}

// ---- Suppressions -----------------------------------------------------------

TEST(DiagnosticSink, SuppressionRoundTrip) {
  Fixture f(Opts());
  ASSERT_TRUE(f.san.sink().Suppress("NPM005"));
  const auto data = Bytes(64, 9);
  f.rt.Write(0, 4096, data);
  f.rt.Persist(0, 4096, 64);
  f.rt.Persist(0, 4096, 64);
  EXPECT_EQ(f.san.sink().total_unsuppressed(), 0u);
  EXPECT_EQ(f.san.sink().suppressed_count(RuleId::kNpm005), 1u);
  // The finding is still carried (marked) in the reports.
  EXPECT_NE(f.san.sink().RenderText().find("[suppressed]"), std::string::npos);
}

TEST(DiagnosticSink, FileScopedSuppression) {
  analyze::DiagnosticSink sink;
  ASSERT_TRUE(sink.Suppress("NPM005:heap.cc"));
  EXPECT_FALSE(sink.Report(RuleId::kNpm005,
                           {"/abs/build/src/pmlib/heap.cc", 10, "f"}, 0, 0,
                           AddrRange{}, "in heap"));
  EXPECT_TRUE(sink.Report(RuleId::kNpm005,
                          {"/abs/build/src/pmlib/pool.cc", 10, "f"}, 0, 0,
                          AddrRange{}, "elsewhere"));
  EXPECT_FALSE(sink.Suppress("NPM999"));
  EXPECT_FALSE(sink.Suppress("bogus"));
}

// ---- Rendering --------------------------------------------------------------

TEST(DiagnosticSink, SarifShape) {
  analyze::DiagnosticSink sink;
  ASSERT_TRUE(sink.Suppress("NPM006"));
  sink.Report(RuleId::kNpm005, {"src/x.cc", 12, "f"}, 0, 100, AddrRange{0, 64},
              "redundant persist");
  sink.Report(RuleId::kNpm006, {"src/y.cc", 34, "g"}, 0, 200, AddrRange{},
              "left dirty");
  const std::string sarif = sink.RenderSarif();
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"nearpm-analyze\""), std::string::npos);
  // Full rule table, in order, regardless of what fired.
  for (int i = 0; i < analyze::kNumRules; ++i) {
    std::string id = "\"id\": \"";
    id += analyze::RuleIdString(static_cast<RuleId>(i));
    EXPECT_NE(sarif.find(id), std::string::npos) << id;
  }
  EXPECT_NE(sarif.find("\"ruleId\": \"NPM005\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(sarif.find("\"suppressions\": [{\"kind\": \"inSource\"}]"),
            std::string::npos);
  const std::string json = sink.RenderJson();
  EXPECT_NE(json.find("\"schema\": \"nearpm-analyze-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"total_unsuppressed\": 1"), std::string::npos);
}

TEST(DiagnosticSink, FoldsRepeatedFindings) {
  analyze::DiagnosticSink sink;
  for (int i = 0; i < 5; ++i) {
    sink.Report(RuleId::kNpm005, {"src/x.cc", 12, "f"}, 0, i, AddrRange{},
                "same site");
  }
  ASSERT_EQ(sink.diagnostics().size(), 1u);
  EXPECT_EQ(sink.diagnostics()[0].count, 5u);
  EXPECT_EQ(sink.count(RuleId::kNpm005), 5u);
}

TEST(TrimSourcePathTest, FindsRepoRoot) {
  EXPECT_EQ(analyze::TrimSourcePath("/home/u/repo/src/pmlib/heap.cc"),
            "src/pmlib/heap.cc");
  EXPECT_EQ(analyze::TrimSourcePath("tests/analyze_test.cc"),
            "tests/analyze_test.cc");
  EXPECT_EQ(analyze::TrimSourcePath("unrelated/path.cc"), "unrelated/path.cc");
}

// ---- Dirty-range merge (the NPM005 fix in the heap commit path) -------------

TEST(MergeDirtyRanges, CoalescesSameLineStores) {
  std::vector<AddrRange> dirty;
  for (int i = 0; i < 8; ++i) {
    dirty.push_back(AddrRange{4096 + static_cast<PmAddr>(i) * 8,
                              4096 + static_cast<PmAddr>(i) * 8 + 8});
  }
  const auto merged = MergeDirtyRanges(dirty);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].begin, 4096u);
  EXPECT_EQ(merged[0].end, 4096u + kCacheLineSize);
}

TEST(MergeDirtyRanges, SortsAndMergesAdjacent) {
  const std::vector<AddrRange> dirty{
      {300, 320}, {64, 128}, {128, 192}, {1000, 1008}};
  const auto merged = MergeDirtyRanges(dirty);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].begin, 64u);   // 64..128 and 128..192 are adjacent
  EXPECT_EQ(merged[0].end, 192u);
  EXPECT_EQ(merged[1].begin, 256u);  // 300..320 rounds to 256..320
  EXPECT_EQ(merged[1].end, 320u);
  EXPECT_EQ(merged[2].begin, 960u);  // 1000..1008 rounds to 960..1024
  EXPECT_EQ(merged[2].end, 1024u);
  EXPECT_TRUE(MergeDirtyRanges(std::vector<AddrRange>{}).empty());
}

TEST(MergeDirtyRanges, HeapCommitPersistsEachLineOnce) {
  // Eight stores into one cache line within one operation: the provider must
  // see a single merged range, so its commit-time persist loop touches the
  // line once and NPM005 stays silent. (Pre-merge, the same scenario fired
  // NPM005 on every duplicate range -- the redundancy satellite fix.)
  Fixture f(Opts());
  PoolArena arena(2ull << 20);
  HeapOptions ho;
  ho.mechanism = Mechanism::kLogging;
  auto heap = PersistentHeap::Create(f.rt, arena, ho);
  ASSERT_TRUE(heap.ok());
  ASSERT_TRUE((*heap)->BeginOp(0).ok());
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        (*heap)->Store<std::uint64_t>(0, (*heap)->root() + 8 * i, i).ok());
  }
  ASSERT_TRUE((*heap)->CommitOp(0).ok());
  EXPECT_EQ(f.san.sink().count(RuleId::kNpm005), 0u)
      << f.san.sink().RenderText();

  // The lint has teeth: handing the provider the raw duplicate ranges (the
  // pre-fix behavior) fires NPM005 for every redundant persist.
  ASSERT_TRUE((*heap)->provider().BeginOp(0).ok());
  auto prepared = (*heap)->provider().PrepareStore(0, (*heap)->root(), 8);
  ASSERT_TRUE(prepared.ok());
  f.rt.Store<std::uint64_t>(0, *prepared, 99);
  const std::vector<AddrRange> duplicates(4, AddrRange{*prepared,
                                                       *prepared + 8});
  ASSERT_TRUE((*heap)->provider().CommitOp(0, duplicates).ok());
  EXPECT_GE(f.san.sink().count(RuleId::kNpm005), 3u);
}

// ---- Offline trace analysis -------------------------------------------------

TEST(TraceAnalyzer, CleanRunStaysCleanOffline) {
  TraceRecorder recorder;
  RuntimeOptions opts = Opts();
  Runtime rt(opts);
  rt.AttachTrace(&recorder);
  PoolArena arena(0);
  HeapOptions ho;
  ho.mechanism = Mechanism::kLogging;
  auto heap = PersistentHeap::Create(rt, arena, ho);
  ASSERT_TRUE(heap.ok());
  for (std::uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE((*heap)->BeginOp(0).ok());
    ASSERT_TRUE(
        (*heap)->Store<std::uint64_t>(0, (*heap)->root() + 8 * i, i).ok());
    ASSERT_TRUE((*heap)->CommitOp(0).ok());
  }
  rt.DrainDevices(0);

  PmSanitizer san;
  const analyze::TraceAnalysisStats stats =
      analyze::AnalyzeTrace(recorder.Snapshot(), &san);
  EXPECT_GT(stats.events, 0u);
  EXPECT_EQ(san.sink().total_unsuppressed(), 0u) << san.sink().RenderText();
}

TEST(TraceAnalyzer, AblationTraceFiresOffline) {
  TraceRecorder recorder;
  Runtime rt(Opts(/*enforce_ppo=*/false));
  rt.AttachTrace(&recorder);
  auto p = rt.RegisterPool(0, 8ull << 20);
  ASSERT_TRUE(p.ok());
  const auto data = Bytes(256, 5);
  rt.Write(0, 4096, data);
  ASSERT_TRUE(rt.RawCopy(*p, 0, 4096, 64 * 1024, 256, /*wait=*/true).ok());

  PmSanitizer san;
  analyze::AnalyzeTrace(recorder.Snapshot(), &san);
  // The un-persisted operand is visible offline too (NPM002); the offline
  // location is the trace record order, not a source file.
  EXPECT_GE(san.sink().count(RuleId::kNpm002), 1u);
  ASSERT_FALSE(san.sink().diagnostics().empty());
  EXPECT_STREQ(san.sink().diagnostics()[0].loc.file, "<trace>");
}

}  // namespace
}  // namespace nearpm
