// Tests for src/obs: the flight recorder's wrap/trim behavior against the
// per-track recorder rings, sliding-window merge and decay, SLO spec
// parsing, the watchdog's teeth in both directions (a breach must dump, a
// clean run must not), and the end-to-end breach -> dump -> timeline replay
// path through the serving layers.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/slo.h"
#include "src/obs/watchdog.h"
#include "src/obs/window.h"
#include "src/prof/request_timeline.h"
#include "src/repl/service.h"
#include "src/serve/service.h"
#include "src/trace/recorder.h"

namespace nearpm {
namespace obs {
namespace {

TraceEvent Event(std::uint32_t pid, SimTime ts, std::uint64_t trace = 0) {
  TraceEvent event;
  event.phase = TracePhase::kServeRequest;
  event.pid = pid;
  event.tid = 0;
  event.ts = ts;
  event.dur = 10;
  event.trace = trace;
  return event;
}

// ---- Flight recorder ------------------------------------------------------

TEST(FlightRecorderTest, RingWrapKeepsNewestRecords) {
  FlightRecorder flight(8);
  TraceSink* sink = flight.RegisterSource("only");
  for (std::uint64_t i = 0; i < 20; ++i) {
    sink->Consume(Event(1, i));
  }
  EXPECT_EQ(flight.accepted(), 20u);
  EXPECT_EQ(flight.dropped(), 12u);

  const std::vector<FlightRecord> records = flight.Snapshot();
  ASSERT_EQ(records.size(), 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].ticket, 12 + i) << "oldest surviving ticket is 12";
    EXPECT_EQ(records[i].ts, 12 + i);
    EXPECT_EQ(records[i].source, 0u);
  }
}

// The per-track rings trim Snapshot() to the newest globally consistent
// suffix once any track wraps; the flight ring is budgeted globally, so it
// retains exactly the newest N events regardless of which track they are
// on. With a flight budget >= the event count, the black box must hold
// events the trimmed recorder snapshot already gave up.
TEST(FlightRecorderTest, RetainsEventsTheTrimmedSnapshotDropped) {
  TraceRecorderOptions opts;
  opts.ring_capacity = 4;
  opts.feed_metrics = false;
  TraceRecorder recorder(opts);
  FlightRecorder flight(1024);
  recorder.AttachSink(flight.RegisterSource("rec"));

  // Track pid=1 wraps (12 events into 4 slots); track pid=2 does not.
  recorder.Record(Event(2, 0));
  for (SimTime ts = 1; ts <= 12; ++ts) {
    recorder.Record(Event(1, ts));
  }
  recorder.Record(Event(2, 13));

  const std::vector<TraceEvent> trimmed = recorder.Snapshot();
  EXPECT_LT(trimmed.size(), recorder.recorded());
  ASSERT_FALSE(trimmed.empty());
  std::uint64_t trim_floor = trimmed.front().order;
  for (const TraceEvent& event : trimmed) {
    trim_floor = std::min(trim_floor, event.order);
  }

  const std::vector<FlightRecord> black_box = flight.Snapshot();
  EXPECT_EQ(black_box.size(), 14u) << "flight budget covers everything";
  std::uint64_t flight_floor = black_box.front().order;
  for (const FlightRecord& record : black_box) {
    flight_floor = std::min(flight_floor, record.order);
  }
  EXPECT_LT(flight_floor, trim_floor)
      << "the flight ring must still hold pre-trim history";
}

TEST(FlightRecorderTest, DumpCarriesSchemaSourcesAndRecords) {
  FlightRecorder flight(16);
  TraceSink* a = flight.RegisterSource("shard0");
  TraceSink* b = flight.RegisterSource("fabric");
  a->Consume(Event(1, 5, /*trace=*/7));
  b->Consume(Event(5, 6, /*trace=*/7));

  std::ostringstream os;
  WriteFlightDump(os, flight, nullptr);
  const std::string dump = os.str();

  EXPECT_NE(dump.find("\"schema\":\"nearpm-flight-v1\""), std::string::npos);
  EXPECT_NE(dump.find("\"sources\":[\"shard0\",\"fabric\"]"),
            std::string::npos);
  EXPECT_EQ(dump.find("\"alert\""), std::string::npos);
  // Header plus one line per record.
  std::istringstream is(dump);
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_NE(dump.find("\"trace\":7"), std::string::npos);
}

// ---- Sliding window -------------------------------------------------------

TEST(SlidingWindowTest, CountsDecayAsSimTimeAdvances) {
  WindowOptions wo;
  wo.window_ns = 1000;
  wo.buckets = 4;
  SlidingWindow window(wo);

  window.RecordLatency(100, 40, /*error=*/false, /*trace=*/1);
  window.RecordLatency(200, 60, /*error=*/true, /*trace=*/2);
  window.RecordDepth(200, 6);

  WindowStats now = window.Snapshot(250);
  EXPECT_EQ(now.count, 2u);
  EXPECT_EQ(now.errors, 1u);
  EXPECT_DOUBLE_EQ(now.ErrorRate(), 0.5);
  EXPECT_EQ(now.depth_max, 6u);
  EXPECT_DOUBLE_EQ(now.MeanDepth(), 6.0);

  // One full window later both samples fell out of scope.
  const WindowStats later = window.Snapshot(1500);
  EXPECT_EQ(later.count, 0u);
  EXPECT_EQ(later.errors, 0u);
  EXPECT_EQ(later.depth_max, 0u);

  // And the wheel recycles: a fresh sample is counted alone.
  window.RecordLatency(1600, 80, /*error=*/false, /*trace=*/3);
  const WindowStats fresh = window.Snapshot(1600);
  EXPECT_EQ(fresh.count, 1u);
  EXPECT_EQ(fresh.errors, 0u);
}

TEST(SlidingWindowTest, MergeAggregatesAndKeepsSlowestAcrossWindows) {
  WindowOptions wo;
  wo.window_ns = 1000;
  wo.buckets = 4;
  wo.slow_k = 2;
  SlidingWindow a(wo);
  SlidingWindow b(wo);

  a.RecordLatency(100, 500, /*error=*/false, /*trace=*/11);
  a.RecordLatency(200, 100, /*error=*/false, /*trace=*/12);
  b.RecordLatency(150, 900, /*error=*/true, /*trace=*/21);
  b.RecordLatency(250, 300, /*error=*/false, /*trace=*/22);

  const WindowStats merged = SlidingWindow::Merge({&a, &b}, 300);
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.errors, 1u);
  EXPECT_EQ(merged.latency.count(), 4u);

  // The merged slow list is the k slowest overall, descending.
  ASSERT_EQ(merged.slowest.size(), 2u);
  EXPECT_EQ(merged.slowest[0].trace, 21u);
  EXPECT_EQ(merged.slowest[0].latency_ns, 900u);
  EXPECT_EQ(merged.slowest[1].trace, 11u);
  EXPECT_EQ(merged.slowest[1].latency_ns, 500u);
}

// ---- SLO spec -------------------------------------------------------------

TEST(SloSpecTest, WriteParseRoundTripsExactly) {
  SloSpec spec;
  spec.name = "tight";
  spec.p99_ns = 1500.5;
  spec.max_error_rate = 0.02;
  spec.max_stall_fraction = 0.1;
  spec.window_ns = 2e6;
  spec.min_requests = 16;
  spec.slow_k = 3;

  const std::string text = WriteSloSpec(spec);
  auto parsed = ParseSloSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(WriteSloSpec(*parsed), text);
  EXPECT_EQ(parsed->name, "tight");
  EXPECT_DOUBLE_EQ(parsed->p99_ns, 1500.5);
  EXPECT_EQ(parsed->min_requests, 16u);
  EXPECT_EQ(parsed->slow_k, 3);
}

TEST(SloSpecTest, RejectsUnknownKeysAndBadValues) {
  EXPECT_FALSE(ParseSloSpec("{\"p99\": 5}").ok()) << "unknown key";
  EXPECT_FALSE(ParseSloSpec("{\"schema_version\": 2}").ok());
  EXPECT_FALSE(ParseSloSpec("{\"max_error_rate\": 1.5}").ok());
  EXPECT_FALSE(ParseSloSpec("{\"window_ns\": 0}").ok());
  EXPECT_FALSE(ParseSloSpec("{\"slow_k\": -1}").ok());
  EXPECT_TRUE(ParseSloSpec("{}").ok()) << "all-defaults spec is valid";
}

// ---- Watchdog -------------------------------------------------------------

TEST(SloWatchdogTest, BreachFiresDumpsAndCoolsDown) {
  const std::string dump_path =
      ::testing::TempDir() + "/nearpm_obs_breach.jsonl";
  std::remove(dump_path.c_str());

  FlightRecorder flight(64);
  flight.RegisterSource("shard0")->Consume(Event(1, 50, /*trace=*/3));

  WindowOptions wo;
  wo.window_ns = 1'000'000;
  SlidingWindow window(wo);
  for (int i = 0; i < 64; ++i) {
    window.RecordLatency(1000 + i, 50'000, /*error=*/false,
                         /*trace=*/static_cast<std::uint64_t>(i + 1));
  }

  WatchdogOptions opts;
  opts.spec.p99_ns = 100;
  opts.spec.min_requests = 8;
  opts.spec.window_ns = 1e6;
  opts.flight = &flight;
  opts.dump_path = dump_path;
  SloWatchdog watchdog(opts);

  EXPECT_TRUE(watchdog.MaybeCheck(2000, {&window}, 0, 64, nullptr));
  EXPECT_EQ(watchdog.alert_count(), 1u);

  const std::vector<SloAlert> alerts = watchdog.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, SloRule::kP99Latency);
  EXPECT_GT(alerts[0].observed, alerts[0].bound);
  ASSERT_FALSE(alerts[0].window.slowest.empty())
      << "an alert must name slow request ids";
  EXPECT_NE(alerts[0].window.slowest[0].trace, 0u);

  // The dump landed, schema-tagged, with the alert embedded.
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "breach must write " << dump_path;
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("\"schema\":\"nearpm-flight-v1\""),
            std::string::npos);
  EXPECT_NE(header.find("\"alert\":{"), std::string::npos);
  EXPECT_NE(header.find("\"rule\":\"p99_latency\""), std::string::npos);

  // Cooldown: the next due check inside one window stays quiet even though
  // the breach persists.
  EXPECT_FALSE(watchdog.MaybeCheck(200'000, {&window}, 0, 64, nullptr));
  EXPECT_EQ(watchdog.alert_count(), 1u);
  std::remove(dump_path.c_str());
}

TEST(SloWatchdogTest, CleanRunNeverCreatesTheDump) {
  const std::string dump_path =
      ::testing::TempDir() + "/nearpm_obs_clean.jsonl";
  std::remove(dump_path.c_str());

  FlightRecorder flight(64);
  WindowOptions wo;
  wo.window_ns = 1'000'000;
  SlidingWindow window(wo);
  for (int i = 0; i < 64; ++i) {
    window.RecordLatency(1000 + i, 10, /*error=*/false);
  }

  WatchdogOptions opts;
  opts.spec.p99_ns = 1e9;          // generous
  opts.spec.max_error_rate = 0.5;  // no errors recorded anyway
  opts.spec.min_requests = 8;
  opts.spec.window_ns = 1e6;
  opts.flight = &flight;
  opts.dump_path = dump_path;
  SloWatchdog watchdog(opts);

  EXPECT_FALSE(watchdog.MaybeCheck(2000, {&window}, 0, 64, nullptr));
  EXPECT_FALSE(watchdog.ForceCheck(3000, {&window}, 0, 64, nullptr));
  EXPECT_EQ(watchdog.alert_count(), 0u);
  EXPECT_GE(watchdog.checks(), 2u);

  std::ifstream in(dump_path);
  EXPECT_FALSE(in.good()) << "a clean run must not write a dump";
}

TEST(SloWatchdogTest, StallFractionRuleFiresOnRejectedDelta) {
  WindowOptions wo;
  wo.window_ns = 1'000'000;
  SlidingWindow window(wo);

  WatchdogOptions opts;
  opts.spec.max_stall_fraction = 0.25;
  opts.spec.min_requests = 8;
  opts.spec.window_ns = 1e6;
  SloWatchdog watchdog(opts);

  // 10 of 20 attempted admissions stalled since the last check.
  EXPECT_TRUE(watchdog.ForceCheck(1000, {&window}, 10, 20, nullptr));
  const std::vector<SloAlert> alerts = watchdog.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, SloRule::kStallFraction);
  EXPECT_DOUBLE_EQ(alerts[0].observed, 0.5);
}

// ---- Serving-layer integration --------------------------------------------

serve::ServeOptions ObsServeOptions() {
  serve::ServeOptions so;
  so.shards = 2;
  so.workers_per_shard = 1;
  so.queue_capacity = 256;
  so.batch_max = 4;
  so.table_slots = 128;
  so.value_size = 16;
  return so;
}

TEST(KvServiceObsTest, TightSloUnderPumpDumpsABreachNamingSlowRequests) {
  const std::string dump_path =
      ::testing::TempDir() + "/nearpm_obs_serve_breach.jsonl";
  std::remove(dump_path.c_str());

  serve::ServeOptions so = ObsServeOptions();
  so.slo_enabled = true;
  so.slo.p99_ns = 1;       // every real request breaches
  so.slo.window_ns = 8000; // sized to the sim run so checks come due
  so.slo.min_requests = 8;
  so.slo_dump_path = dump_path;
  auto svc = serve::KvService::Create(so);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  std::vector<std::future<serve::ServeResult>> futures;
  for (std::uint64_t key = 0; key < 64; ++key) {
    serve::ServeRequest req;
    req.kind = serve::RequestKind::kPut;
    req.key = key;
    req.value.assign(16, static_cast<std::uint8_t>(key));
    auto fut = (*svc)->Submit(std::move(req));
    ASSERT_TRUE(fut.ok());
    futures.push_back(std::move(*fut));
  }
  (*svc)->Pump();

  std::set<std::uint64_t> issued;
  for (auto& fut : futures) {
    const serve::ServeResult res = fut.get();
    EXPECT_TRUE(res.status.ok());
    EXPECT_NE(res.trace_id, 0u) << "every admitted request gets a trace id";
    issued.insert(res.trace_id);
  }
  EXPECT_EQ(issued.size(), futures.size()) << "trace ids are unique";

  ASSERT_NE((*svc)->watchdog(), nullptr);
  EXPECT_GE((*svc)->watchdog()->alert_count(), 1u);
  const std::vector<SloAlert> alerts = (*svc)->watchdog()->alerts();
  ASSERT_FALSE(alerts.empty());
  ASSERT_FALSE(alerts[0].window.slowest.empty());
  for (const SlowRequest& slow : alerts[0].window.slowest) {
    EXPECT_TRUE(issued.count(slow.trace))
        << "alert names unknown trace id " << slow.trace;
  }

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("\"schema\":\"nearpm-flight-v1\""),
            std::string::npos);
  EXPECT_NE(header.find("\"sources\":[\"shard0\",\"shard1\"]"),
            std::string::npos);

  // The breach's slow ids resolve against the quiesced shard traces.
  std::vector<TimelineSource> sources = (*svc)->TimelineSources();
  const std::vector<std::uint64_t> ids = ListTraceIds(sources);
  EXPECT_EQ(ids.size(), issued.size());
  const RequestTimeline timeline =
      BuildRequestTimeline(sources, alerts[0].window.slowest[0].trace);
  ASSERT_FALSE(timeline.empty());
  EXPECT_TRUE(timeline.AttributionHolds());
  std::remove(dump_path.c_str());
}

TEST(KvServiceObsTest, WindowSnapshotSeesTheRunAndCleanSloStaysQuiet) {
  const std::string dump_path =
      ::testing::TempDir() + "/nearpm_obs_serve_clean.jsonl";
  std::remove(dump_path.c_str());

  serve::ServeOptions so = ObsServeOptions();
  so.slo_enabled = true;
  so.slo.p99_ns = 1e12;
  so.slo.min_requests = 8;
  so.slo_dump_path = dump_path;
  auto svc = serve::KvService::Create(so);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  for (std::uint64_t key = 0; key < 32; ++key) {
    serve::ServeRequest req;
    req.kind = serve::RequestKind::kPut;
    req.key = key;
    req.value.assign(16, static_cast<std::uint8_t>(key));
    ASSERT_TRUE((*svc)->Submit(std::move(req)).ok());
  }
  (*svc)->Pump();

  const obs::WindowStats stats =
      (*svc)->WindowSnapshot((*svc)->Stats().makespan_ns);
  EXPECT_EQ(stats.count, 32u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_FALSE(stats.slowest.empty());

  EXPECT_EQ((*svc)->watchdog()->alert_count(), 0u);
  std::ifstream in(dump_path);
  EXPECT_FALSE(in.good()) << "a clean run must not write a dump";

  // The always-on black box is dumpable without any breach.
  std::ostringstream os;
  ASSERT_TRUE((*svc)->DumpFlightRecord(os));
  EXPECT_NE(os.str().find("\"schema\":\"nearpm-flight-v1\""),
            std::string::npos);
}

// ---- Cross-replica timeline -----------------------------------------------

TEST(ReplObsTest, CrossReplicaTimelineSpansNodesAndFabric) {
  repl::ReplOptions ro;
  ro.groups = 2;
  ro.replicas = 2;
  ro.workers_per_shard = 1;
  ro.queue_capacity = 64;
  ro.batch_max = 4;
  ro.table_slots = 128;
  ro.value_size = 16;
  auto svc = repl::ReplicatedKvService::Create(ro);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  serve::ServeRequest req;
  req.kind = serve::RequestKind::kMultiPut;
  for (std::uint64_t key = 0; key < 8; ++key) {
    req.pairs.push_back(
        {key, std::vector<std::uint8_t>(16, static_cast<std::uint8_t>(key))});
  }
  auto fut = (*svc)->Submit(std::move(req));
  ASSERT_TRUE(fut.ok());
  EXPECT_EQ((*svc)->Pump(), 1u);
  const serve::ServeResult res = fut->get();
  ASSERT_TRUE(res.status.ok());
  ASSERT_NE(res.trace_id, 0u);

  std::vector<TimelineSource> sources = (*svc)->TimelineSources();
  ASSERT_EQ(sources.size(), 5u) << "4 nodes + fabric";
  EXPECT_EQ(sources.back().label, "fabric");

  const RequestTimeline timeline =
      BuildRequestTimeline(sources, res.trace_id);
  ASSERT_FALSE(timeline.empty());
  EXPECT_TRUE(timeline.AttributionHolds())
      << "device slices must tile even across replicas";

  std::set<int> touched;
  bool fabric_hop = false;
  bool replica_hop = false;
  for (const TimelineHop& hop : timeline.hops) {
    touched.insert(hop.source);
    const std::string& label = sources[hop.source].label;
    if (label == "fabric") {
      fabric_hop = true;
      EXPECT_EQ(hop.event.trace, res.trace_id)
          << "fabric frames carry the originating id";
    }
    if (label != "fabric" && label != "node0") {
      replica_hop = true;
    }
  }
  EXPECT_GE(touched.size(), 3u)
      << "a replicated txn crosses coordinator, fabric and peers";
  EXPECT_TRUE(fabric_hop) << "kNetXfer hops must appear in the timeline";
  EXPECT_TRUE(replica_hop) << "replica-side replay must carry the id";

  // The flight recorder covered the same run cluster-wide.
  ASSERT_NE((*svc)->flight(), nullptr);
  EXPECT_GT((*svc)->flight()->accepted(), 0u);
  const std::vector<std::string>& labels =
      (*svc)->flight()->source_labels();
  ASSERT_EQ(labels.size(), 5u);
  EXPECT_EQ(labels.back(), "fabric");
}

}  // namespace
}  // namespace obs
}  // namespace nearpm
