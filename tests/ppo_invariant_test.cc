// Direct tests of the four PPO invariants (Section 4) at the runtime level,
// plus hardware-recovery (journal replay) semantics.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/core/runtime.h"

namespace nearpm {
namespace {

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i);
  }
  return out;
}

struct Fixture {
  explicit Fixture(ExecMode mode, bool ppo = true) {
    RuntimeOptions o;
    o.mode = mode;
    o.pm_size = 32ull << 20;
    o.enforce_ppo = ppo;
    rt = std::make_unique<Runtime>(o);
    auto p = rt->RegisterPool(0, 16ull << 20);
    EXPECT_TRUE(p.ok());
    pool = *p;
  }
  PmAddr slot(int i) const {
    return (8ull << 20) + static_cast<PmAddr>(i) * kSlotSize;
  }
  std::unique_ptr<Runtime> rt;
  PoolId pool = 0;
};

// Invariant 1 (read/write ordering, shared addresses): a CPU load of memory
// an NDP procedure is writing happens-after the NDP write.
TEST(PpoInvariant1Test, LoadReturnsCompletedNdpWrite) {
  Fixture f(ExecMode::kNdpMultiDelayed);
  f.rt->Write(0, CcArea::SlotData(f.slot(0)), Pattern(2048, 9));
  f.rt->Persist(0, CcArea::SlotData(f.slot(0)), 2048);
  ASSERT_TRUE(f.rt->ApplyLog(f.pool, 0, f.slot(0), 2048, 1 << 20).ok());
  // Load immediately: must see the fully applied data, never a torn state.
  std::vector<std::uint8_t> out(2048);
  f.rt->Read(0, 1 << 20, out);
  EXPECT_EQ(out, Pattern(2048, 9));
}

// Invariant 2 (persistence, shared addresses): a CPU persist issued after an
// NDP procedure in program order implies the NDP writes persist first --
// even through a crash.
TEST(PpoInvariant2Test, PersistOrdersBehindNdpProcedure) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Fixture f(ExecMode::kNdpMultiDelayed);
    f.rt->Write(0, 0, Pattern(1024, 1));
    f.rt->Persist(0, 0, 1024);
    ASSERT_TRUE(f.rt->UndologCreate(f.pool, 0, 1, 0, 1024, f.slot(0)).ok());
    // Program order: update then persist the updated data.
    f.rt->Write(0, 0, Pattern(1024, 2));
    f.rt->Persist(0, 0, 1024);
    Rng rng(seed);
    f.rt->InjectCrash(rng);
    // The update persisted, so the log must have persisted before it.
    std::vector<std::uint8_t> data(1024);
    f.rt->Read(0, 0, data);
    ASSERT_EQ(data, Pattern(1024, 2));
    const SlotHeader header = f.rt->Load<SlotHeader>(0, f.slot(0));
    ASSERT_EQ(header.magic, kUndoMagic) << "seed " << seed;
    std::vector<std::uint8_t> payload(1024);
    f.rt->Read(0, CcArea::SlotData(f.slot(0)), payload);
    ASSERT_EQ(payload, Pattern(1024, 1));
    ASSERT_EQ(Checksum64(payload), header.checksum);
  }
}

// Relaxed half of Invariant 2: persists to NDP-managed memory (the log) do
// NOT block the CPU -- the posting thread keeps running while the copy is in
// flight.
TEST(PpoInvariant2Test, NdpManagedWritesDoNotBlockCpu) {
  Fixture f(ExecMode::kNdpMultiDelayed);
  f.rt->Write(0, 0, Pattern(4096, 1));
  f.rt->Persist(0, 0, 4096);
  const SimTime before = f.rt->Now(0);
  ASSERT_TRUE(f.rt->UndologCreate(f.pool, 0, 1, 0, 4096, f.slot(0)).ok());
  const SimTime after = f.rt->Now(0);
  // The CPU paid only the command post, far less than the 4 kB copy.
  EXPECT_LT(static_cast<double>(after - before),
            f.rt->options().hw.cost.NdpCopyNs(4096));
}

// Invariant 3 (persist-before-synchronization): at a crash, if anything
// issued after a synchronization is durable anywhere, everything issued
// before it is durable everywhere.
TEST(PpoInvariant3Test, SyncFrontierRepairsStragglers) {
  Fixture f(ExecMode::kNdpMultiDelayed);
  // Two log creates on a 8 kB object spanning both devices, then a commit
  // (which emits the sync + deferred deletes), then lots of CPU progress so
  // the sync completes, then another create.
  f.rt->Write(0, 0, Pattern(4096, 1));
  f.rt->Persist(0, 0, 4096);
  ASSERT_TRUE(f.rt->UndologCreate(f.pool, 0, 1, 0, 4096, f.slot(0)).ok());
  const PmAddr slots[] = {f.slot(0)};
  ASSERT_TRUE(f.rt->CommitLog(f.pool, 0, slots).ok());
  f.rt->Compute(0, 50000.0);  // the delayed sync completes meanwhile
  ASSERT_TRUE(f.rt->UndologCreate(f.pool, 0, 2, 8192, 1024, f.slot(1)).ok());
  f.rt->Compute(0, 50000.0);
  Rng rng(3);
  const CrashReport report = f.rt->InjectCrash(rng);
  // The commit's sync was reached: the frontier is nonzero and nothing from
  // before it was lost.
  EXPECT_GT(report.frontier_sync, 0u);
}

// Invariant 4 (failure-recovery): after any crash, an interrupted undo
// procedure leaves either a valid, checksummed log or no trace -- recovery
// never reads a half-written log as valid.
TEST(PpoInvariant4Test, LogsAreValidOrAbsentAfterCrash) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Fixture f(ExecMode::kNdpMultiDelayed);
    f.rt->Write(0, 0, Pattern(4096, 7));
    f.rt->Persist(0, 0, 4096);
    ASSERT_TRUE(f.rt->UndologCreate(f.pool, 0, 1, 0, 4096, f.slot(0)).ok());
    // Crash with the copy possibly mid-flight.
    Rng rng(seed);
    f.rt->InjectCrash(rng);
    const SlotHeader header = f.rt->Load<SlotHeader>(0, f.slot(0));
    if (header.magic == kUndoMagic) {
      // Header present => payload complete and checksummed (the header is
      // the last work item of the request).
      std::vector<std::uint8_t> payload(header.size);
      f.rt->Read(0, CcArea::SlotData(f.slot(0)), payload);
      EXPECT_EQ(Checksum64(payload), header.checksum) << "seed " << seed;
    } else {
      EXPECT_EQ(header.magic, 0u) << "seed " << seed;
    }
  }
}

// Hardware recovery: requests that were durable at the crash are not
// replayed (replaying an undo-log create against updated data would corrupt
// the pre-image); requests that were lost leave no valid log.
TEST(HardwareRecoveryTest, ReplayNeverCorruptsDurableLogs) {
  Fixture f(ExecMode::kNdpMultiDelayed);
  f.rt->Write(0, 0, Pattern(256, 1));
  f.rt->Persist(0, 0, 256);
  ASSERT_TRUE(f.rt->UndologCreate(f.pool, 0, 1, 0, 256, f.slot(0)).ok());
  // The update's persist orders behind the log copy and retires it.
  f.rt->Write(0, 0, Pattern(256, 2));
  f.rt->Persist(0, 0, 256);
  Rng rng(5);
  f.rt->InjectCrash(rng);
  // The log payload must still be the PRE-update data even though the
  // journal may have contained the request at the crash.
  std::vector<std::uint8_t> payload(256);
  f.rt->Read(0, CcArea::SlotData(f.slot(0)), payload);
  EXPECT_EQ(payload, Pattern(256, 1));
}

// The recovery journal is bounded: completed requests leave it (the request
// FIFO is 32 entries; an unbounded journal would be an unbuildable device).
TEST(HardwareRecoveryTest, JournalStaysBounded) {
  Fixture f(ExecMode::kNdpSingleDevice);
  f.rt->Write(0, 0, Pattern(4096, 1));
  f.rt->Persist(0, 0, 4096);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.rt->UndologCreate(f.pool, 0, static_cast<std::uint64_t>(i),
                                    0, 64, f.slot(i % 8))
                    .ok());
    f.rt->Compute(0, 2000.0);  // each copy completes before the next issue
  }
  // Everything completed long ago; a crash finds (almost) nothing in flight.
  Rng rng(1);
  const CrashReport report = f.rt->InjectCrash(rng);
  EXPECT_LE(report.requests_dropped + report.requests_truncated, 2u);
}

}  // namespace
}  // namespace nearpm
