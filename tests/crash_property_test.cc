// Randomized crash-consistency property tests.
//
// A bank of accounts lives in a persistent heap; every operation transfers a
// random amount between two accounts (touching at least two pages, so the
// object spans both interleaved NearPM devices). At a random point the power
// fails -- dropping un-persisted CPU lines at random and truncating in-flight
// NDP work by its timing -- the process restarts, the mechanism recovers, and
// the invariant is checked: the sum of all accounts is exactly the minted
// total. Atomicity violations (half-applied transfers) break the sum.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/pmlib/heap.h"
#include "src/trace/ppo_checker.h"
#include "src/trace/recorder.h"

namespace nearpm {
namespace {

constexpr int kAccounts = 16;
constexpr std::uint64_t kInitialBalance = 1000;
constexpr std::uint64_t kAccountStride = 2048;  // spreads accounts over pages

class Bank {
 public:
  explicit Bank(PersistentHeap* heap) : heap_(heap) {}

  PmAddr AccountAddr(int i) const {
    return heap_->root() + static_cast<PmAddr>(i) * kAccountStride;
  }

  Status Mint(ThreadId t) {
    NEARPM_RETURN_IF_ERROR(heap_->BeginOp(t));
    for (int i = 0; i < kAccounts; ++i) {
      NEARPM_RETURN_IF_ERROR(
          heap_->Store<std::uint64_t>(t, AccountAddr(i), kInitialBalance));
    }
    return heap_->CommitOp(t);
  }

  Status Transfer(ThreadId t, int from, int to, std::uint64_t amount,
                  bool commit) {
    NEARPM_RETURN_IF_ERROR(heap_->BeginOp(t));
    auto a = heap_->Load<std::uint64_t>(t, AccountAddr(from));
    if (!a.ok()) return a.status();
    auto b = heap_->Load<std::uint64_t>(t, AccountAddr(to));
    if (!b.ok()) return b.status();
    const std::uint64_t moved = amount % (*a + 1);
    NEARPM_RETURN_IF_ERROR(
        heap_->Store<std::uint64_t>(t, AccountAddr(from), *a - moved));
    NEARPM_RETURN_IF_ERROR(
        heap_->Store<std::uint64_t>(t, AccountAddr(to), *b + moved));
    if (!commit) {
      return Status::Ok();  // power will fail mid-operation
    }
    return heap_->CommitOp(t);
  }

  StatusOr<std::uint64_t> Sum(ThreadId t) {
    std::uint64_t sum = 0;
    for (int i = 0; i < kAccounts; ++i) {
      auto v = heap_->Load<std::uint64_t>(t, AccountAddr(i));
      if (!v.ok()) return v.status();
      sum += *v;
    }
    return sum;
  }

 private:
  PersistentHeap* heap_;
};

struct CrashCase {
  Mechanism mechanism;
  ExecMode mode;
  std::uint64_t seed;
};

class CrashPropertyTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashPropertyTest, SumInvariantSurvivesCrash) {
  const CrashCase c = GetParam();
  RuntimeOptions opts;
  opts.mode = c.mode;
  opts.pm_size = 64ull << 20;
  Runtime rt(opts);
  // Record the whole schedule; PPO is enforced, so the trace must satisfy
  // the Section 4 invariants (checked at the end).
  TraceRecorder recorder;
  rt.AttachTrace(&recorder);
  PoolArena arena(0);
  HeapOptions ho;
  ho.mechanism = c.mechanism;
  ho.data_size = 1ull << 20;
  auto heap = PersistentHeap::Create(rt, arena, ho);
  ASSERT_TRUE(heap.ok());
  Bank bank(heap->get());
  ASSERT_TRUE(bank.Mint(0).ok());
  rt.DrainDevices(0);

  Rng rng(c.seed);
  const int total_ops = 40 + static_cast<int>(rng.NextBounded(80));
  const int crash_after = static_cast<int>(rng.NextBounded(total_ops));
  const bool crash_mid_op = rng.NextBool(0.3);

  for (int op = 0; op < total_ops; ++op) {
    const int from = static_cast<int>(rng.NextBounded(kAccounts));
    int to = static_cast<int>(rng.NextBounded(kAccounts));
    if (to == from) {
      to = (to + 1) % kAccounts;
    }
    const bool last = op == crash_after;
    ASSERT_TRUE(
        bank.Transfer(0, from, to, rng.Next() % 100, !(last && crash_mid_op))
            .ok());
    if (last) {
      break;
    }
  }

  rt.InjectCrash(rng);
  (*heap)->DropVolatile();
  ASSERT_TRUE((*heap)->Recover().ok());

  auto sum = bank.Sum(0);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, static_cast<std::uint64_t>(kAccounts) * kInitialBalance)
      << "atomicity violated: mechanism=" << MechanismName(c.mechanism)
      << " mode=" << ExecModeName(c.mode) << " seed=" << c.seed;

  // The recovered heap is usable: more transfers keep the invariant.
  for (int op = 0; op < 10; ++op) {
    ASSERT_TRUE(bank.Transfer(0, op % kAccounts, (op + 3) % kAccounts,
                              rng.Next() % 50, true)
                    .ok());
  }
  rt.DrainDevices(0);
  auto sum2 = bank.Sum(0);
  ASSERT_TRUE(sum2.ok());
  EXPECT_EQ(*sum2, static_cast<std::uint64_t>(kAccounts) * kInitialBalance);

  const auto violations = PpoChecker{}.Check(recorder);
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

std::vector<CrashCase> AllCrashCases() {
  std::vector<CrashCase> cases;
  for (Mechanism mech :
       {Mechanism::kLogging, Mechanism::kRedoLogging,
        Mechanism::kCheckpointing, Mechanism::kShadowPaging}) {
    for (ExecMode mode :
         {ExecMode::kCpuBaseline, ExecMode::kNdpSingleDevice,
          ExecMode::kNdpMultiSwSync, ExecMode::kNdpMultiDelayed}) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        cases.push_back(CrashCase{mech, mode, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrashPropertyTest,
                         ::testing::ValuesIn(AllCrashCases()),
                         [](const auto& info) {
                           return std::string(MechanismName(info.param.mechanism)) +
                                  "_" + ExecModeName(info.param.mode) + "_s" +
                                  std::to_string(info.param.seed);
                         });

// ---- Repeated crash-recover-crash cycles --------------------------------------

TEST(CrashCycleTest, SurvivesManyCrashes) {
  RuntimeOptions opts;
  opts.mode = ExecMode::kNdpMultiDelayed;
  opts.pm_size = 64ull << 20;
  Runtime rt(opts);
  TraceRecorder recorder;
  rt.AttachTrace(&recorder);
  PoolArena arena(0);
  HeapOptions ho;
  ho.mechanism = Mechanism::kLogging;
  ho.data_size = 1ull << 20;
  auto heap = PersistentHeap::Create(rt, arena, ho);
  ASSERT_TRUE(heap.ok());
  Bank bank(heap->get());
  ASSERT_TRUE(bank.Mint(0).ok());
  rt.DrainDevices(0);

  Rng rng(99);
  for (int cycle = 0; cycle < 15; ++cycle) {
    const int ops = 1 + static_cast<int>(rng.NextBounded(20));
    for (int op = 0; op < ops; ++op) {
      const int from = static_cast<int>(rng.NextBounded(kAccounts));
      const int to = (from + 1 + static_cast<int>(rng.NextBounded(kAccounts - 1))) %
                     kAccounts;
      ASSERT_TRUE(bank.Transfer(0, from, to, rng.Next() % 100, true).ok());
    }
    rt.InjectCrash(rng);
    (*heap)->DropVolatile();
    ASSERT_TRUE((*heap)->Recover().ok());
    auto sum = bank.Sum(0);
    ASSERT_TRUE(sum.ok());
    ASSERT_EQ(*sum, static_cast<std::uint64_t>(kAccounts) * kInitialBalance)
        << "cycle " << cycle;
  }

  // One epoch per crash, and no ordering violation in any of them.
  EXPECT_EQ(recorder.epoch(), 15u);
  const auto violations = PpoChecker{}.Check(recorder);
  EXPECT_TRUE(violations.empty()) << PpoChecker::Report(violations);
}

// ---- The Section 2.3 inconsistency, reproduced and fixed by PPO ----------------

// Craft the paper's Figure 4 scenario: an undo log of a large object is still
// in flight when the CPU updates the object in place and the update reaches
// PM. Without PPO the log is lost and recovery cannot roll back; with PPO the
// CPU write stalls until the log persisted, so recovery always works.
std::uint64_t RecoveredValueWithPpo(bool enforce_ppo) {
  RuntimeOptions opts;
  opts.mode = ExecMode::kNdpMultiDelayed;
  opts.pm_size = 64ull << 20;
  opts.enforce_ppo = enforce_ppo;
  opts.pending_line_survival = 1.0;  // the unlucky eviction: update reaches PM
  Runtime rt(opts);
  PoolArena arena(0);
  HeapOptions ho;
  ho.mechanism = Mechanism::kLogging;
  ho.data_size = 1ull << 20;
  auto heap = PersistentHeap::Create(rt, arena, ho);
  EXPECT_TRUE(heap.ok());
  const PmAddr obj = (*heap)->root();

  // Committed initial value.
  EXPECT_TRUE((*heap)->BeginOp(0).ok());
  std::vector<std::uint8_t> old_value(4096, 0xAA);
  EXPECT_TRUE((*heap)->Write(0, obj, old_value).ok());
  EXPECT_TRUE((*heap)->CommitOp(0).ok());
  rt.DrainDevices(0);

  // Torn operation: overwrite the object, crash before commit, right after
  // the store. The 4 kB undo copy is still executing near memory.
  EXPECT_TRUE((*heap)->BeginOp(0).ok());
  std::vector<std::uint8_t> new_value(4096, 0xBB);
  EXPECT_TRUE((*heap)->Write(0, obj, new_value).ok());

  Rng rng(5);
  rt.InjectCrash(rng);
  (*heap)->DropVolatile();
  EXPECT_TRUE((*heap)->Recover().ok());
  auto v = (*heap)->Load<std::uint8_t>(0, obj);
  EXPECT_TRUE(v.ok());
  return *v;
}

TEST(PpoAblationTest, WithoutPpoRecoveryIsInconsistent) {
  EXPECT_EQ(RecoveredValueWithPpo(false), 0xBB)
      << "expected the torn update to survive unrecovered without PPO";
}

TEST(PpoAblationTest, WithPpoRecoveryRollsBack) {
  EXPECT_EQ(RecoveredValueWithPpo(true), 0xAA);
}

}  // namespace
}  // namespace nearpm
