// Workload tests: functional behaviour of the nine applications, and
// crash-recovery property sweeps driven by each workload's own structural
// Verify() (tree order/balance, chain integrity, table invariants).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "src/common/rng.h"
#include "src/workloads/btree.h"
#include "src/workloads/workload.h"
#include "src/workloads/ycsb.h"

namespace nearpm {
namespace {

RuntimeOptions Opts(ExecMode mode) {
  RuntimeOptions o;
  o.mode = mode;
  o.pm_size = 256ull << 20;
  return o;
}

WorkloadConfig SmallConfig(Mechanism mech) {
  WorkloadConfig c;
  c.mechanism = mech;
  c.data_size = 4ull << 20;
  c.initial_keys = 200;
  c.seed = 42;
  return c;
}

// ---- Functional behaviour -----------------------------------------------------

TEST(WorkloadRegistryTest, AllNamesResolve) {
  for (const std::string& name : EvaluatedWorkloads()) {
    auto w = CreateWorkload(name);
    ASSERT_NE(w, nullptr) << name;
    EXPECT_EQ(w->name(), name);
  }
  EXPECT_EQ(CreateWorkload("nope"), nullptr);
  EXPECT_EQ(EvaluatedWorkloads().size(), 9u);
}

TEST(BTreeTest, InsertAndLookup) {
  Runtime rt(Opts(ExecMode::kNdpMultiDelayed));
  PoolArena arena(0);
  BTreeWorkload tree;
  ASSERT_TRUE(tree.Setup(rt, arena, SmallConfig(Mechanism::kLogging)).ok());
  ASSERT_TRUE(tree.Insert(0, 999999).ok());
  Value64 out;
  auto found = tree.Lookup(0, 999999, &out);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(*found);
  const Value64 expect = ValueForKey(999999);
  EXPECT_EQ(0, memcmp(out.bytes, expect.bytes, kValueSize));
  auto missing = tree.Lookup(0, 123456789, nullptr);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(*missing);
  EXPECT_TRUE(tree.Verify().ok());
}

TEST(ZipfianTest, SkewedAndBounded) {
  ZipfianGenerator zipf(1000);
  Rng rng(3);
  std::uint64_t hits_low = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t k = zipf.Next(rng);
    ASSERT_LT(k, 1000u);
    hits_low += k < 10;
  }
  // Zipf 0.99: the 10 hottest keys of 1000 draw far more than 1% of accesses.
  EXPECT_GT(hits_low, 2000u);
}

TEST(YcsbGenTest, MixRespected) {
  YcsbWorkloadGen::Mix mix;
  mix.insert = 0.2;
  mix.update = 0.5;
  mix.read = 0.3;
  YcsbWorkloadGen gen(1000, mix);
  Rng rng(7);
  int inserts = 0;
  int updates = 0;
  int reads = 0;
  for (int i = 0; i < 10000; ++i) {
    switch (gen.Next(rng).kind) {
      case YcsbOp::Kind::kInsert:
        ++inserts;
        break;
      case YcsbOp::Kind::kUpdate:
        ++updates;
        break;
      case YcsbOp::Kind::kRead:
        ++reads;
        break;
    }
  }
  EXPECT_NEAR(inserts / 10000.0, 0.2, 0.03);
  EXPECT_NEAR(updates / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(reads / 10000.0, 0.3, 0.03);
}

// Every workload runs and verifies in every mechanism (no crash).
class WorkloadRunTest
    : public ::testing::TestWithParam<std::tuple<std::string, Mechanism>> {};

TEST_P(WorkloadRunTest, RunsAndVerifies) {
  const auto& [name, mech] = GetParam();
  Runtime rt(Opts(ExecMode::kNdpMultiDelayed));
  PoolArena arena(0);
  auto w = CreateWorkload(name);
  ASSERT_NE(w, nullptr);
  WorkloadConfig config = SmallConfig(mech);
  config.initial_keys = 100;
  ASSERT_TRUE(w->Setup(rt, arena, config).ok());
  Rng rng(11);
  for (int op = 0; op < 60; ++op) {
    ASSERT_TRUE(w->RunOp(0, rng).ok()) << name << " op " << op;
  }
  rt.DrainDevices(0);
  EXPECT_TRUE(w->Verify().ok()) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadRunTest,
    ::testing::Combine(::testing::ValuesIn(EvaluatedWorkloads()),
                       ::testing::Values(Mechanism::kLogging,
                                         Mechanism::kRedoLogging,
                                         Mechanism::kCheckpointing,
                                         Mechanism::kShadowPaging)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             MechanismName(std::get<1>(info.param));
    });

// ---- Crash-recovery sweep -------------------------------------------------------

struct WorkloadCrashCase {
  std::string name;
  Mechanism mechanism;
  ExecMode mode;
  std::uint64_t seed;
};

class WorkloadCrashTest : public ::testing::TestWithParam<WorkloadCrashCase> {};

TEST_P(WorkloadCrashTest, StructureSurvivesCrash) {
  const WorkloadCrashCase& c = GetParam();
  Runtime rt(Opts(c.mode));
  PoolArena arena(0);
  auto w = CreateWorkload(c.name);
  ASSERT_NE(w, nullptr);
  WorkloadConfig config = SmallConfig(c.mechanism);
  config.initial_keys = 80;
  config.seed = c.seed;
  ASSERT_TRUE(w->Setup(rt, arena, config).ok());
  rt.DrainDevices(0);

  Rng rng(c.seed * 7919 + 13);
  const int ops = 10 + static_cast<int>(rng.NextBounded(50));
  for (int op = 0; op < ops; ++op) {
    ASSERT_TRUE(w->RunOp(0, rng).ok());
  }
  rt.InjectCrash(rng);
  w->DropVolatile();
  ASSERT_TRUE(w->Recover().ok());
  EXPECT_TRUE(w->Verify().ok())
      << c.name << "/" << MechanismName(c.mechanism) << "/"
      << ExecModeName(c.mode) << " seed=" << c.seed;

  // The recovered structure keeps working.
  for (int op = 0; op < 10; ++op) {
    ASSERT_TRUE(w->RunOp(0, rng).ok());
  }
  rt.DrainDevices(0);
  EXPECT_TRUE(w->Verify().ok());
}

std::vector<WorkloadCrashCase> WorkloadCrashCases() {
  std::vector<WorkloadCrashCase> cases;
  for (const std::string& name : EvaluatedWorkloads()) {
    for (Mechanism mech :
         {Mechanism::kLogging, Mechanism::kCheckpointing,
          Mechanism::kShadowPaging}) {
      for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        cases.push_back(
            {name, mech, ExecMode::kNdpMultiDelayed, seed});
      }
      cases.push_back({name, mech, ExecMode::kCpuBaseline, 3});
      cases.push_back({name, mech, ExecMode::kNdpSingleDevice, 4});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, WorkloadCrashTest,
                         ::testing::ValuesIn(WorkloadCrashCases()),
                         [](const auto& info) {
                           return info.param.name + "_" +
                                  std::string(MechanismName(info.param.mechanism)) +
                                  "_" + ExecModeName(info.param.mode) + "_s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace nearpm
