// Functional correctness of the workload data structures against in-memory
// reference models: after any operation sequence, the persistent structure
// must contain exactly the reference's key set with the right values.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/workloads/btree.h"
#include "src/workloads/hashmap.h"
#include "src/workloads/kvserver.h"
#include "src/workloads/tatp.h"
#include "src/workloads/tpcc.h"
#include "src/workloads/workload.h"

namespace nearpm {
namespace {

RuntimeOptions Opts() {
  RuntimeOptions o;
  o.mode = ExecMode::kNdpMultiDelayed;
  o.pm_size = 256ull << 20;
  return o;
}

WorkloadConfig Config(Mechanism mech, std::uint64_t initial = 0) {
  WorkloadConfig c;
  c.mechanism = mech;
  c.data_size = 8ull << 20;
  c.initial_keys = initial;
  c.seed = 5;
  return c;
}

TEST(BTreeFunctionalTest, MatchesReferenceModel) {
  Runtime rt(Opts());
  PoolArena arena;
  BTreeWorkload tree;
  ASSERT_TRUE(tree.Setup(rt, arena, Config(Mechanism::kLogging)).ok());

  std::set<std::uint64_t> reference;
  Rng rng(17);
  for (int i = 0; i < 800; ++i) {
    const std::uint64_t key = rng.NextBounded(500);  // plenty of duplicates
    ASSERT_TRUE(tree.Insert(0, key).ok());
    reference.insert(key);
  }
  rt.DrainDevices(0);
  ASSERT_TRUE(tree.Verify().ok());

  // Every reference key is found with the right value; absent keys are not.
  for (std::uint64_t key = 0; key < 500; ++key) {
    Value64 value;
    auto found = tree.Lookup(0, key, &value);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(*found, reference.contains(key)) << "key " << key;
    if (*found) {
      const Value64 expect = ValueForKey(key);
      EXPECT_EQ(0, std::memcmp(value.bytes, expect.bytes, kValueSize));
    }
  }
  // The tree's count bookkeeping equals the reference size.
  auto root = tree.heap().Load<BTreeWorkload::Root>(0, tree.heap().root());
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->count, reference.size());
}

TEST(BTreeFunctionalTest, SequentialAndReverseInsertions) {
  for (bool reverse : {false, true}) {
    Runtime rt(Opts());
    PoolArena arena;
    BTreeWorkload tree;
    ASSERT_TRUE(tree.Setup(rt, arena, Config(Mechanism::kLogging)).ok());
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t key = reverse ? 300 - i : i + 1;
      ASSERT_TRUE(tree.Insert(0, key).ok());
    }
    rt.DrainDevices(0);
    EXPECT_TRUE(tree.Verify().ok()) << (reverse ? "reverse" : "sequential");
    auto root = tree.heap().Load<BTreeWorkload::Root>(0, tree.heap().root());
    EXPECT_EQ(root->count, 300u);
  }
}

TEST(HashMapFunctionalTest, CountsDistinctKeys) {
  Runtime rt(Opts());
  PoolArena arena;
  HashMapWorkload map;
  ASSERT_TRUE(map.Setup(rt, arena, Config(Mechanism::kLogging)).ok());

  std::set<std::uint64_t> reference;
  Rng rng(23);
  for (int i = 0; i < 600; ++i) {
    const std::uint64_t key = rng.NextBounded(300);
    ASSERT_TRUE(map.Put(0, key).ok());
    reference.insert(key);
  }
  rt.DrainDevices(0);
  ASSERT_TRUE(map.Verify().ok());
  auto root = map.heap().Load<HashMapWorkload::Root>(0, map.heap().root());
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->count, reference.size());
}

TEST(HashMapFunctionalTest, HashIsStable) {
  // The bucket function must be deterministic across calls (persistent
  // structures die otherwise).
  for (std::uint64_t k : {0ull, 1ull, 12345ull, ~0ull}) {
    EXPECT_EQ(HashMapWorkload::HashKey(k), HashMapWorkload::HashKey(k));
  }
  // And spread: a run of consecutive keys should not collide into one bucket.
  std::set<std::uint64_t> buckets;
  for (std::uint64_t k = 0; k < 64; ++k) {
    buckets.insert(HashMapWorkload::HashKey(k) % HashMapWorkload::kBuckets);
  }
  EXPECT_GT(buckets.size(), 48u);
}

TEST(KvServerFunctionalTest, MemcachedPartitionsPools) {
  Runtime rt(Opts());
  PoolArena arena;
  KvServerWorkload server(/*shared_pool=*/false);
  WorkloadConfig config = Config(Mechanism::kLogging, 10);
  config.threads = 4;
  ASSERT_TRUE(server.Setup(rt, arena, config).ok());
  // Four independent pools were created.
  Rng rng(31);
  for (int op = 0; op < 100; ++op) {
    ASSERT_TRUE(server.RunOp(static_cast<ThreadId>(op % 4), rng).ok());
  }
  rt.DrainDevices(0);
  EXPECT_TRUE(server.Verify().ok());
  EXPECT_NE(&server.heap(0), &server.heap(3));
}

TEST(KvServerFunctionalTest, RedisSharesOnePool) {
  Runtime rt(Opts());
  PoolArena arena;
  KvServerWorkload server(/*shared_pool=*/true);
  WorkloadConfig config = Config(Mechanism::kLogging, 10);
  config.threads = 4;
  ASSERT_TRUE(server.Setup(rt, arena, config).ok());
  Rng rng(31);
  for (int op = 0; op < 100; ++op) {
    ASSERT_TRUE(server.RunOp(static_cast<ThreadId>(op % 4), rng).ok());
  }
  for (int t = 0; t < 4; ++t) {
    rt.DrainDevices(static_cast<ThreadId>(t));
  }
  EXPECT_TRUE(server.Verify().ok());
}

TEST(TpccFunctionalTest, PaymentMovesMoneyConsistently) {
  Runtime rt(Opts());
  PoolArena arena;
  TpccWorkload tpcc;
  ASSERT_TRUE(tpcc.Setup(rt, arena, Config(Mechanism::kLogging)).ok());
  Rng rng(41);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tpcc.Payment(0, rng).ok());
  }
  rt.DrainDevices(0);
  EXPECT_TRUE(tpcc.Verify().ok());
  auto root = tpcc.heap().Load<TpccWorkload::Root>(0, tpcc.heap().root());
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->total_payments, 50u);
  auto wh =
      tpcc.heap().Load<TpccWorkload::WarehouseRow>(0, root->warehouse);
  ASSERT_TRUE(wh.ok());
  EXPECT_GT(wh->ytd, 0u);
}

TEST(TpccFunctionalTest, NewOrderAdvancesDistricts) {
  Runtime rt(Opts());
  PoolArena arena;
  TpccWorkload tpcc;
  ASSERT_TRUE(tpcc.Setup(rt, arena, Config(Mechanism::kLogging)).ok());
  Rng rng(43);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(tpcc.NewOrder(0, rng).ok());
  }
  rt.DrainDevices(0);
  EXPECT_TRUE(tpcc.Verify().ok());
  // 60 orders distributed over the districts.
  auto root = tpcc.heap().Load<TpccWorkload::Root>(0, tpcc.heap().root());
  std::uint64_t orders = 0;
  for (std::uint64_t d = 0; d < TpccWorkload::kDistricts; ++d) {
    auto district = tpcc.heap().Load<TpccWorkload::DistrictRow>(
        0, root->districts + d * sizeof(TpccWorkload::DistrictRow));
    ASSERT_TRUE(district.ok());
    orders += district->next_o_id - 1;
  }
  EXPECT_EQ(orders, 60u);
}

TEST(TatpFunctionalTest, RowCrcDetectsTorn) {
  TatpWorkload::SubscriberRow row;
  row.s_id = 7;
  row.location = 1234;
  row.crc = row.ComputeCrc();
  EXPECT_EQ(row.crc, row.ComputeCrc());
  row.location = 9999;  // torn: field changed, crc stale
  EXPECT_NE(row.crc, row.ComputeCrc());
}

TEST(TatpFunctionalTest, UpdatesKeepRowsSelfConsistent) {
  Runtime rt(Opts());
  PoolArena arena;
  TatpWorkload tatp;
  ASSERT_TRUE(tatp.Setup(rt, arena, Config(Mechanism::kLogging)).ok());
  Rng rng(47);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tatp.RunOp(0, rng).ok());
  }
  rt.DrainDevices(0);
  EXPECT_TRUE(tatp.Verify().ok());
}

TEST(WorkloadSeedTest, SameSeedSameStructure) {
  // Determinism: two runs with identical seeds build identical trees.
  auto run = [](std::uint64_t* count_out) {
    Runtime rt(Opts());
    PoolArena arena;
    BTreeWorkload tree;
    WorkloadConfig c = Config(Mechanism::kLogging, 100);
    EXPECT_TRUE(tree.Setup(rt, arena, c).ok());
    Rng rng(99);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(tree.RunOp(0, rng).ok());
    }
    auto root = tree.heap().Load<BTreeWorkload::Root>(0, tree.heap().root());
    *count_out = root->count;
  };
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  run(&a);
  run(&b);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
}

}  // namespace
}  // namespace nearpm
