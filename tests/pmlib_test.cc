#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/pmlib/heap.h"

namespace nearpm {
namespace {

RuntimeOptions Opts(ExecMode mode = ExecMode::kNdpMultiDelayed) {
  RuntimeOptions o;
  o.mode = mode;
  o.pm_size = 64ull << 20;
  return o;
}

struct HeapFixture {
  explicit HeapFixture(Mechanism mech, ExecMode mode = ExecMode::kNdpMultiDelayed)
      : rt(Opts(mode)), arena(0) {
    HeapOptions ho;
    ho.mechanism = mech;
    ho.data_size = 1ull << 20;
    ho.threads = 2;
    ho.ckpt_epoch_ops = 4;  // the recovery tests assume this interval
    auto h = PersistentHeap::Create(rt, arena, ho);
    EXPECT_TRUE(h.ok()) << h.status().ToString();
    heap = std::move(*h);
  }
  Runtime rt;
  PoolArena arena;
  std::unique_ptr<PersistentHeap> heap;
};

// ---- Allocator ---------------------------------------------------------------

TEST(AllocatorTest, ClassIndexMapping) {
  EXPECT_EQ(PmAllocator::ClassIndex(1), 0);
  EXPECT_EQ(PmAllocator::ClassIndex(64), 0);
  EXPECT_EQ(PmAllocator::ClassIndex(65), 1);
  EXPECT_EQ(PmAllocator::ClassIndex(128), 1);
  EXPECT_EQ(PmAllocator::ClassIndex(4096), 6);
  EXPECT_EQ(PmAllocator::ClassIndex(4097), -1);
  EXPECT_EQ(PmAllocator::ClassIndex(0), -1);
}

TEST(AllocatorTest, AllocFreeReuse) {
  HeapFixture f(Mechanism::kLogging);
  auto a = f.heap->allocator().Alloc(0, 100);
  ASSERT_TRUE(a.ok());
  auto b = f.heap->allocator().Alloc(0, 100);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  ASSERT_TRUE(f.heap->allocator().Free(0, *a, 100).ok());
  auto c = f.heap->allocator().Alloc(0, 100);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // block reused
}

TEST(AllocatorTest, DistinctClassesDistinctChunks) {
  HeapFixture f(Mechanism::kLogging);
  auto small = f.heap->allocator().Alloc(0, 64);
  auto large = f.heap->allocator().Alloc(0, 2048);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_NE(AlignDown(*small, kPmPageSize), AlignDown(*large, kPmPageSize));
}

TEST(AllocatorTest, BlocksStayInsidePage) {
  HeapFixture f(Mechanism::kLogging);
  for (int i = 0; i < 200; ++i) {
    auto a = f.heap->allocator().Alloc(0, 192);  // rounds to 256
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(AlignDown(*a, kPmPageSize), AlignDown(*a + 255, kPmPageSize));
  }
}

TEST(AllocatorTest, DoubleFreeRejected) {
  HeapFixture f(Mechanism::kLogging);
  auto a = f.heap->allocator().Alloc(0, 64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.heap->allocator().Free(0, *a, 64).ok());
  EXPECT_FALSE(f.heap->allocator().Free(0, *a, 64).ok());
}

TEST(AllocatorTest, WrongSizeClassFreeRejected) {
  HeapFixture f(Mechanism::kLogging);
  auto a = f.heap->allocator().Alloc(0, 64);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(f.heap->allocator().Free(0, *a, 1024).ok());
}

TEST(AllocatorTest, RebuildVolatileMatchesState) {
  HeapFixture f(Mechanism::kLogging);
  std::vector<PmAddr> blocks;
  for (int i = 0; i < 10; ++i) {
    auto a = f.heap->allocator().Alloc(0, 512);
    ASSERT_TRUE(a.ok());
    blocks.push_back(*a);
  }
  ASSERT_TRUE(f.heap->allocator().Free(0, blocks[3], 512).ok());
  f.heap->allocator().RebuildVolatile();
  EXPECT_EQ(f.heap->allocator().allocated_blocks(), 9u);
  // The freed block is allocatable again after rebuild (the allocator may
  // serve other free blocks first).
  bool reused = false;
  for (int i = 0; i < 8 && !reused; ++i) {
    auto again = f.heap->allocator().Alloc(0, 512);
    ASSERT_TRUE(again.ok());
    reused = *again == blocks[3];
  }
  EXPECT_TRUE(reused);
}

// ---- Heap operations across mechanisms ----------------------------------------

class MechanismTest
    : public ::testing::TestWithParam<std::tuple<Mechanism, ExecMode>> {};

TEST_P(MechanismTest, StoreLoadRoundTrip) {
  HeapFixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  const PmAddr root = f.heap->root();
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  ASSERT_TRUE(f.heap->Store<std::uint64_t>(0, root, 12345).ok());
  // Uncommitted value visible to the writing thread.
  auto mid = f.heap->Load<std::uint64_t>(0, root);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(*mid, 12345u);
  ASSERT_TRUE(f.heap->CommitOp(0).ok());
  auto after = f.heap->Load<std::uint64_t>(0, root);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, 12345u);
}

TEST_P(MechanismTest, MultipleOpsAccumulate) {
  HeapFixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  const PmAddr root = f.heap->root();
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.heap->BeginOp(0).ok());
    ASSERT_TRUE(f.heap->Store(0, root + 8 * (i % 8), i).ok());
    ASSERT_TRUE(f.heap->CommitOp(0).ok());
  }
  auto v = f.heap->Load<std::uint64_t>(0, root + 8 * 3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 19u);
}

TEST_P(MechanismTest, AllocateAndLinkInsideOp) {
  HeapFixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  const PmAddr root = f.heap->root();
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  auto node = f.heap->Alloc(0, 256);
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE(f.heap->Store<std::uint64_t>(0, *node, 777).ok());
  ASSERT_TRUE(f.heap->Store<PmAddr>(0, root, *node).ok());
  ASSERT_TRUE(f.heap->CommitOp(0).ok());

  auto link = f.heap->Load<PmAddr>(0, root);
  ASSERT_TRUE(link.ok());
  auto value = f.heap->Load<std::uint64_t>(0, *link);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 777u);
}

TEST_P(MechanismTest, TwoThreadsIndependentOps) {
  HeapFixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  const PmAddr root = f.heap->root();
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  ASSERT_TRUE(f.heap->BeginOp(1).ok());
  ASSERT_TRUE(f.heap->Store<std::uint64_t>(0, root, 1).ok());
  ASSERT_TRUE(f.heap->Store<std::uint64_t>(1, root + 4096, 2).ok());
  ASSERT_TRUE(f.heap->CommitOp(1).ok());
  ASSERT_TRUE(f.heap->CommitOp(0).ok());
  EXPECT_EQ(*f.heap->Load<std::uint64_t>(0, root), 1u);
  EXPECT_EQ(*f.heap->Load<std::uint64_t>(0, root + 4096), 2u);
}

TEST_P(MechanismTest, BeginTwiceRejected) {
  HeapFixture f(std::get<0>(GetParam()), std::get<1>(GetParam()));
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  EXPECT_FALSE(f.heap->BeginOp(0).ok());
  ASSERT_TRUE(f.heap->CommitOp(0).ok());
  EXPECT_FALSE(f.heap->CommitOp(0).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanismsAndModes, MechanismTest,
    ::testing::Combine(::testing::Values(Mechanism::kLogging,
                                         Mechanism::kRedoLogging,
                                         Mechanism::kCheckpointing,
                                         Mechanism::kShadowPaging),
                       ::testing::Values(ExecMode::kCpuBaseline,
                                         ExecMode::kNdpSingleDevice,
                                         ExecMode::kNdpMultiDelayed)),
    [](const auto& info) {
      return std::string(MechanismName(std::get<0>(info.param))) + "_" +
             ExecModeName(std::get<1>(info.param));
    });

// ---- Targeted recovery behaviour ----------------------------------------------

TEST(UndoRecoveryTest, UncommittedOpRollsBack) {
  HeapFixture f(Mechanism::kLogging);
  const PmAddr root = f.heap->root();
  // Committed baseline value.
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  ASSERT_TRUE(f.heap->Store<std::uint64_t>(0, root, 111).ok());
  ASSERT_TRUE(f.heap->CommitOp(0).ok());
  // Open op that never commits: in-place update persisted by force.
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  ASSERT_TRUE(f.heap->Store<std::uint64_t>(0, root, 222).ok());
  f.rt.Persist(0, root, 8);  // make the torn update durable
  f.rt.DrainDevices(0);      // the undo log is definitely in PM

  Rng rng(7);
  f.rt.InjectCrash(rng);
  f.heap->DropVolatile();
  ASSERT_TRUE(f.heap->Recover().ok());
  EXPECT_EQ(*f.heap->Load<std::uint64_t>(0, root), 111u);
  EXPECT_GT(static_cast<UndoLogProvider&>(f.heap->provider()).rollbacks(), 0u);
}

TEST(UndoRecoveryTest, CommittedOpSurvives) {
  HeapFixture f(Mechanism::kLogging);
  const PmAddr root = f.heap->root();
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  ASSERT_TRUE(f.heap->Store<std::uint64_t>(0, root, 333).ok());
  ASSERT_TRUE(f.heap->CommitOp(0).ok());
  Rng rng(7);
  f.rt.InjectCrash(rng);
  f.heap->DropVolatile();
  ASSERT_TRUE(f.heap->Recover().ok());
  EXPECT_EQ(*f.heap->Load<std::uint64_t>(0, root), 333u);
}

TEST(RedoRecoveryTest, CommittedOpReappliesAfterCrash) {
  HeapFixture f(Mechanism::kRedoLogging);
  const PmAddr root = f.heap->root();
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  ASSERT_TRUE(f.heap->Store<std::uint64_t>(0, root, 444).ok());
  ASSERT_TRUE(f.heap->CommitOp(0).ok());
  Rng rng(7);
  f.rt.InjectCrash(rng);
  f.heap->DropVolatile();
  ASSERT_TRUE(f.heap->Recover().ok());
  EXPECT_EQ(*f.heap->Load<std::uint64_t>(0, root), 444u);
}

TEST(RedoRecoveryTest, UncommittedOpDiscarded) {
  HeapFixture f(Mechanism::kRedoLogging);
  const PmAddr root = f.heap->root();
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  ASSERT_TRUE(f.heap->Store<std::uint64_t>(0, root, 555).ok());
  ASSERT_TRUE(f.heap->CommitOp(0).ok());
  // Second op never commits.
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  ASSERT_TRUE(f.heap->Store<std::uint64_t>(0, root, 666).ok());
  Rng rng(7);
  f.rt.InjectCrash(rng);
  f.heap->DropVolatile();
  ASSERT_TRUE(f.heap->Recover().ok());
  EXPECT_EQ(*f.heap->Load<std::uint64_t>(0, root), 555u);
}

TEST(CkptRecoveryTest, MidEpochCrashRollsBackToEpochStart) {
  HeapFixture f(Mechanism::kCheckpointing);
  auto& provider = static_cast<CheckpointProvider&>(f.heap->provider());
  const PmAddr root = f.heap->root();
  // Epoch interval is 4 ops: run exactly one full epoch.
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(f.heap->BeginOp(0).ok());
    ASSERT_TRUE(f.heap->Store(0, root, i).ok());
    ASSERT_TRUE(f.heap->CommitOp(0).ok());
  }
  EXPECT_EQ(provider.epochs_closed(), 1u);
  // Two ops into the next epoch, then crash.
  for (std::uint64_t i = 5; i <= 6; ++i) {
    ASSERT_TRUE(f.heap->BeginOp(0).ok());
    ASSERT_TRUE(f.heap->Store(0, root, i).ok());
    ASSERT_TRUE(f.heap->CommitOp(0).ok());
  }
  f.rt.Persist(0, root, 8);
  Rng rng(9);
  f.rt.InjectCrash(rng);
  f.heap->DropVolatile();
  ASSERT_TRUE(f.heap->Recover().ok());
  EXPECT_EQ(*f.heap->Load<std::uint64_t>(0, root), 4u);  // epoch boundary
}

TEST(ShadowRecoveryTest, UncommittedOpInvisibleAfterCrash) {
  HeapFixture f(Mechanism::kShadowPaging);
  const PmAddr root = f.heap->root();
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  ASSERT_TRUE(f.heap->Store<std::uint64_t>(0, root, 111).ok());
  ASSERT_TRUE(f.heap->CommitOp(0).ok());
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  ASSERT_TRUE(f.heap->Store<std::uint64_t>(0, root, 999).ok());
  // No commit: the shadow page was written but the PTE never switched.
  f.rt.DrainDevices(0);
  Rng rng(3);
  f.rt.InjectCrash(rng);
  f.heap->DropVolatile();
  ASSERT_TRUE(f.heap->Recover().ok());
  EXPECT_EQ(*f.heap->Load<std::uint64_t>(0, root), 111u);
}

TEST(ShadowRecoveryTest, CommittedOpVisibleAfterCrash) {
  HeapFixture f(Mechanism::kShadowPaging);
  const PmAddr root = f.heap->root();
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  ASSERT_TRUE(f.heap->Store<std::uint64_t>(0, root, 4242).ok());
  ASSERT_TRUE(f.heap->CommitOp(0).ok());
  Rng rng(3);
  f.rt.InjectCrash(rng);
  f.heap->DropVolatile();
  ASSERT_TRUE(f.heap->Recover().ok());
  EXPECT_EQ(*f.heap->Load<std::uint64_t>(0, root), 4242u);
}

TEST(ShadowProviderTest, PagesRecycledAfterCommit) {
  HeapFixture f(Mechanism::kShadowPaging);
  const PmAddr root = f.heap->root();
  // Many ops on the same page must not exhaust the physical page area.
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(f.heap->BeginOp(0).ok());
    ASSERT_TRUE(f.heap->Store(0, root, i).ok());
    ASSERT_TRUE(f.heap->CommitOp(0).ok());
  }
  EXPECT_EQ(*f.heap->Load<std::uint64_t>(0, root), 99u);
}

TEST(HeapFreeTest, FreeInsideOpIsDeferred) {
  HeapFixture f(Mechanism::kLogging);
  auto a = f.heap->Alloc(0, 64);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.heap->BeginOp(0).ok());
  ASSERT_TRUE(f.heap->Free(0, *a, 64).ok());
  // Not yet reusable: the op has not committed.
  auto b = f.heap->Alloc(0, 64);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*b, *a);
  ASSERT_TRUE(f.heap->CommitOp(0).ok());
  auto c = f.heap->Alloc(0, 64);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // reusable after the durable point
}

}  // namespace
}  // namespace nearpm
