// src/trace subsystem tests: recorder order/epoch/ring semantics, the
// metrics registry, and the Chrome trace-event exporter. The exporter output
// is schema-checked with a small JSON parser over the trace of a real
// simulated run (the same WriteChromeTrace path --trace-out uses), so a
// regression in the emitted JSON fails here rather than in Perfetto.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/runtime.h"
#include "src/trace/chrome_exporter.h"
#include "src/trace/metrics.h"
#include "src/trace/ppo_checker.h"
#include "src/trace/recorder.h"

namespace nearpm {
namespace {

// ---- Minimal JSON model + recursive-descent parser --------------------------
// Only what the schema check needs; rejects anything malformed.

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  bool is(Type t) const { return type == t; }
  const Json* Find(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(Json* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') {
      if (pos_ + n >= s_.size() || s_[pos_ + n] != lit[n]) {
        return false;
      }
      ++n;
    }
    pos_ += n;
    return true;
  }
  bool ParseValue(Json* out) {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = Json::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = Json::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = Json::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = Json::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }
  bool ParseString(std::string* out) {
    if (s_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          return false;
        }
        char esc = s_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              return false;
            }
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
                return false;
              }
            }
            pos_ += 4;
            out->push_back('?');  // codepoint value irrelevant to the schema
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }
  bool ParseNumber(Json* out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    try {
      out->number = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    out->type = Json::Type::kNumber;
    return true;
  }
  bool ParseArray(Json* out) {
    out->type = Json::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json elem;
      if (!ParseValue(&elem)) {
        return false;
      }
      out->arr.push_back(std::move(elem));
      SkipWs();
      if (pos_ >= s_.size()) {
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool ParseObject(Json* out) {
    out->type = Json::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= s_.size() || !ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      Json value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->obj.emplace(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= s_.size()) {
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TraceEvent Instant(TracePhase phase, std::uint32_t pid, std::uint32_t tid,
                   SimTime ts) {
  TraceEvent e;
  e.phase = phase;
  e.pid = pid;
  e.tid = tid;
  e.ts = ts;
  return e;
}

// ---- Recorder ---------------------------------------------------------------

TEST(TraceRecorderTest, AssignsMonotonicOrderAndEpochs) {
  TraceRecorder recorder;
  recorder.Record(Instant(TracePhase::kCpuWrite, kTraceHostPid, 0, 10));
  recorder.Record(Instant(TracePhase::kCpuFence, kTraceHostPid, 1, 5));
  recorder.Record(Instant(TracePhase::kFifoEnqueue, TraceDevicePid(0), 0, 7));
  EXPECT_EQ(recorder.NextEpoch(), 1u);
  recorder.Record(Instant(TracePhase::kCpuWrite, kTraceHostPid, 0, 1));

  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].order, i + 1);  // global record order, 1-based
  }
  EXPECT_EQ(events[0].epoch, 0u);
  EXPECT_EQ(events[2].epoch, 0u);
  EXPECT_EQ(events[3].epoch, 1u);
  EXPECT_EQ(recorder.recorded(), 4u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.track_count(), 3u);
}

TEST(TraceRecorderTest, RingOverwritesOldestPerTrack) {
  TraceRecorderOptions options;
  options.ring_capacity = 4;
  TraceRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(Instant(TracePhase::kCpuWrite, kTraceHostPid, 0, i));
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);

  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The ring keeps the newest window: orders 7..10.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].order, 7 + i);
  }
}

TEST(TraceRecorderTest, SnapshotTrimsToConsistentSuffixAcrossTracks) {
  TraceRecorderOptions options;
  options.ring_capacity = 4;
  TraceRecorder recorder(options);
  // A calm track records before (order 1) and after (order 12) a busy track
  // wraps its ring (10 events, orders 2..11; the ring keeps 8..11).
  recorder.Record(Instant(TracePhase::kRetire, TraceDevicePid(0), 0, 5));
  for (int i = 0; i < 10; ++i) {
    recorder.Record(Instant(TracePhase::kCpuWrite, kTraceHostPid, 0, 10 + i));
  }
  recorder.Record(Instant(TracePhase::kRetire, TraceDevicePid(0), 0, 50));

  // The calm track's order-1 event predates the busy ring's oldest retained
  // entry: emitting it would present a stream with a hole in the middle.
  // The snapshot is the newest consistent suffix, orders 8..12.
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].order, 8 + i);
  }
}

TEST(TraceRecorderTest, MacrosAreSafeWhenDetachedOrDisabled) {
  TraceRecorder* detached = nullptr;
  NEARPM_TRACE_EVENT(detached, .phase = TracePhase::kCpuFence, .ts = 1);
  EXPECT_FALSE(NEARPM_TRACE_ENABLED(detached));

  TraceRecorder recorder;
  recorder.set_enabled(false);
  EXPECT_FALSE(NEARPM_TRACE_ENABLED(&recorder));
  NEARPM_TRACE_EVENT(&recorder, .phase = TracePhase::kCpuFence, .ts = 1);
  EXPECT_EQ(recorder.recorded(), 0u);

  recorder.set_enabled(true);
  NEARPM_TRACE_SPAN(&recorder, .phase = TracePhase::kUnitExec, .ts = 1,
                    .dur = 9);
  EXPECT_EQ(recorder.recorded(), 1u);
}

TEST(TraceRecorderTest, FeedsMetricsPerPhase) {
  TraceRecorder recorder;
  NEARPM_TRACE_SPAN(&recorder, .phase = TracePhase::kUnitExec,
                    .pid = TraceDevicePid(0), .tid = kTraceUnitTidBase,
                    .ts = 100, .dur = 250);
  NEARPM_TRACE_EVENT(&recorder, .phase = TracePhase::kCpuFence, .ts = 5);

  const MetricsRegistry& metrics = recorder.metrics();
  ASSERT_NE(metrics.counters().find("unit_exec"), metrics.counters().end());
  EXPECT_EQ(metrics.counters().at("unit_exec"), 1u);
  EXPECT_EQ(metrics.counters().at("cpu_fence"), 1u);
  // Only spans feed the latency histograms.
  ASSERT_NE(metrics.histograms().find("unit_exec"),
            metrics.histograms().end());
  EXPECT_EQ(metrics.histograms().at("unit_exec").count(), 1u);
  EXPECT_EQ(metrics.histograms().count("cpu_fence"), 0u);
}

TEST(TraceRecorderTest, ClearResetsEverything) {
  TraceRecorder recorder;
  recorder.Record(Instant(TracePhase::kCpuWrite, kTraceHostPid, 0, 1));
  recorder.NextEpoch();
  recorder.Clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.epoch(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_TRUE(recorder.metrics().empty());
}

// ---- Metrics registry -------------------------------------------------------

TEST(MetricsRegistryTest, ReportAndJsonRoundTrip) {
  MetricsRegistry metrics;
  metrics.Increment("requests_issued");
  metrics.Increment("requests_issued", 4);
  metrics.AddLatency("unit_exec", 100);
  metrics.AddLatency("unit_exec", 300);

  const std::string report = metrics.Report();
  EXPECT_NE(report.find("requests_issued"), std::string::npos);
  EXPECT_NE(report.find("unit_exec"), std::string::npos);

  Json root;
  ASSERT_TRUE(JsonParser(metrics.ToJson()).Parse(&root)) << metrics.ToJson();
  const Json* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  const Json* issued = counters->Find("requests_issued");
  ASSERT_NE(issued, nullptr);
  EXPECT_EQ(issued->number, 5.0);
  const Json* latencies = root.Find("latencies_ns");
  ASSERT_NE(latencies, nullptr);
  EXPECT_NE(latencies->Find("unit_exec"), nullptr);
}

TEST(MetricsRegistryTest, EscapeLabelValueHandlesSpecialCharacters) {
  // Backslash, double quote and newline are the three characters the
  // Prometheus exposition format requires escaping inside label values.
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("two\nlines"), "two\\nlines");
  // Replica track names carry '/', ':' and spaces -- all legal inside a
  // quoted label value, so they must pass through untouched.
  EXPECT_EQ(EscapeLabelValue("node 3 / link 0->1: net"),
            "node 3 / link 0->1: net");
}

TEST(MetricsRegistryTest, PrometheusLabelsStayWellFormed) {
  MetricsRegistry metrics;
  // A gauge whose label value carries every character class replica track
  // names produce, built the way the profiler does it.
  metrics.SetGauge(
      "duty{resource=\"" + EscapeLabelValue("nic \"rx\" / link 0:1\n") + "\"}",
      0.5);
  const std::string prom = metrics.ToPrometheus("repl");
  EXPECT_NE(prom.find("repl_duty{"), std::string::npos) << prom;
  // The quote and the newline must appear escaped, never raw: a raw quote
  // would terminate the label value early, a raw newline would split the
  // sample line.
  EXPECT_NE(prom.find("\\\"rx\\\""), std::string::npos) << prom;
  EXPECT_NE(prom.find("\\n"), std::string::npos) << prom;
  for (std::size_t at = prom.find('{'); at != std::string::npos;
       at = prom.find('{', at + 1)) {
    const std::size_t close = prom.find('}', at);
    ASSERT_NE(close, std::string::npos);
    EXPECT_EQ(prom.substr(at, close - at).find('\n'), std::string::npos)
        << "raw newline inside a label set:\n" << prom;
  }
}

TEST(MetricsRegistryTest, ConcurrentRecordingFromWorkerThreads) {
  MetricsRegistry metrics;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&metrics, t] {
      // Mix of a shared counter (contended), per-thread counters (map
      // insertion under load) and shared histograms, like serve workers do.
      auto& cached = metrics.Counter("requests_total");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        cached.fetch_add(1, std::memory_order_relaxed);
        metrics.Increment("batches_total");
        metrics.Increment("worker_" + std::to_string(t) + "_ops");
        metrics.AddLatency("request_ns", (i % 7 + 1) * 100);
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }

  EXPECT_EQ(metrics.counters().at("requests_total"), kThreads * kPerThread);
  EXPECT_EQ(metrics.counters().at("batches_total"), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(metrics.counters().at("worker_" + std::to_string(t) + "_ops"),
              kPerThread);
  }
  EXPECT_EQ(metrics.histograms().at("request_ns").count(),
            kThreads * kPerThread);
  EXPECT_GT(metrics.histograms().at("request_ns").Percentile(0.99), 0u);
}

// ---- Chrome trace exporter --------------------------------------------------

// Records the trace of a real run touching every layer: CPU access, an NDP
// undo-log create, a commit (cross-device sync + deferred delete) and a
// crash with hardware recovery.
void RecordExemplarRun(TraceRecorder* recorder) {
  RuntimeOptions options;
  options.mode = ExecMode::kNdpMultiDelayed;
  options.pm_size = 16ull << 20;
  Runtime rt(options);
  rt.AttachTrace(recorder);
  auto pool = rt.RegisterPool(0, 1 << 20);
  ASSERT_TRUE(pool.ok());

  const std::uint8_t line[64] = {};
  rt.Write(0, 4096, line);
  rt.Persist(0, 4096, sizeof(line));
  rt.Fence(0);
  (void)rt.Load<std::uint64_t>(0, 4096);

  const PmAddr slot = 512 * 1024;
  ASSERT_TRUE(rt.UndologCreate(*pool, 0, /*tx_id=*/1, /*old_data=*/0,
                               /*size=*/4096, slot)
                  .ok());
  const PmAddr slots[] = {slot};
  ASSERT_TRUE(rt.CommitLog(*pool, 0, slots).ok());
  ASSERT_TRUE(rt.UndologCreate(*pool, 0, /*tx_id=*/2, /*old_data=*/8192,
                               /*size=*/4096, slot + 8192)
                  .ok());
  Rng rng(7);
  rt.InjectCrash(rng);
}

TEST(ChromeExporterTest, EmitsSchemaValidTraceForARealRun) {
  TraceRecorder recorder;
  RecordExemplarRun(&recorder);
  ASSERT_GT(recorder.recorded(), 0u);

  std::ostringstream os;
  WriteChromeTrace(recorder, os);

  Json root;
  ASSERT_TRUE(JsonParser(os.str()).Parse(&root));
  ASSERT_TRUE(root.is(Json::Type::kObject));
  const Json* unit = root.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->str, "ns");

  const Json* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is(Json::Type::kArray));
  ASSERT_FALSE(events->arr.empty());

  std::set<std::string> names;
  std::size_t spans = 0;
  std::size_t instants = 0;
  std::size_t metadata = 0;
  std::size_t counters = 0;
  for (const Json& e : events->arr) {
    ASSERT_TRUE(e.is(Json::Type::kObject));
    const Json* name = e.Find("name");
    const Json* ph = e.Find("ph");
    const Json* pid = e.Find("pid");
    const Json* tid = e.Find("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    ASSERT_TRUE(name->is(Json::Type::kString));
    ASSERT_TRUE(pid->is(Json::Type::kNumber));
    ASSERT_TRUE(tid->is(Json::Type::kNumber));
    ASSERT_TRUE(ph->str == "X" || ph->str == "i" || ph->str == "M" ||
                ph->str == "C")
        << "unexpected phase " << ph->str;
    if (ph->str == "C") {
      // Counter-track samples: occupancy series Perfetto renders as graphs.
      ++counters;
      names.insert(name->str);
      const Json* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      const Json* value = args->Find("value");
      ASSERT_NE(value, nullptr);
      ASSERT_TRUE(value->is(Json::Type::kNumber));
      EXPECT_GE(value->number, 0.0);
      continue;
    }
    if (ph->str == "M") {
      ++metadata;
      EXPECT_TRUE(name->str == "process_name" || name->str == "thread_name");
      const Json* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      const Json* label = args->Find("name");
      ASSERT_NE(label, nullptr);
      EXPECT_FALSE(label->str.empty());
      continue;
    }
    names.insert(name->str);
    const Json* ts = e.Find("ts");
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->is(Json::Type::kNumber));
    EXPECT_GE(ts->number, 0.0);
    if (ph->str == "X") {
      ++spans;
      const Json* dur = e.Find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GT(dur->number, 0.0);
    } else {
      ++instants;
      const Json* scope = e.Find("s");
      ASSERT_NE(scope, nullptr);
    }
  }
  EXPECT_GT(spans, 0u);
  EXPECT_GT(instants, 0u);
  EXPECT_GT(metadata, 0u);
  EXPECT_GT(counters, 0u);
  // The run above must have produced the core lifecycle vocabulary,
  // including the occupancy counter tracks.
  for (const char* expected : {"cmd_post", "dev_pipeline", "unit_exec",
                               "cpu_persist", "cpu_read", "crash",
                               "fifo_depth", "inflight_depth"}) {
    EXPECT_NE(names.find(expected), names.end()) << "missing " << expected;
  }
}

TEST(ChromeExporterTest, LaysEpochsOutSequentially) {
  // Epoch 1's clocks restart from zero; on the exported timeline its events
  // must still land after everything in epoch 0.
  std::vector<TraceEvent> events;
  TraceEvent first = Instant(TracePhase::kCpuWrite, kTraceHostPid, 0, 1000);
  first.epoch = 0;
  first.order = 1;
  TraceEvent second = Instant(TracePhase::kCpuFence, kTraceHostPid, 0, 0);
  second.epoch = 1;
  second.order = 2;
  events.push_back(first);
  events.push_back(second);

  std::ostringstream os;
  WriteChromeTrace(events, os);
  Json root;
  ASSERT_TRUE(JsonParser(os.str()).Parse(&root));
  const Json* trace_events = root.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);

  double write_ts = -1;
  double fence_ts = -1;
  for (const Json& e : trace_events->arr) {
    const Json* name = e.Find("name");
    const Json* ts = e.Find("ts");
    if (name == nullptr || ts == nullptr) {
      continue;
    }
    if (name->str == "cpu_write") {
      write_ts = ts->number;
    } else if (name->str == "cpu_fence") {
      fence_ts = ts->number;
    }
  }
  ASSERT_GE(write_ts, 0.0);
  ASSERT_GE(fence_ts, 0.0);
  EXPECT_GT(fence_ts, write_ts);
}

TEST(ChromeExporterTest, WritesFileAndReportsIoFailure) {
  TraceRecorder recorder;
  recorder.Record(Instant(TracePhase::kCpuWrite, kTraceHostPid, 0, 1));

  const std::string path = ::testing::TempDir() + "/nearpm_trace_test.json";
  ASSERT_TRUE(WriteChromeTraceFile(recorder, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  Json root;
  EXPECT_TRUE(JsonParser(buffer.str()).Parse(&root));
  EXPECT_NE(root.Find("traceEvents"), nullptr);

  EXPECT_FALSE(WriteChromeTraceFile(
      recorder, "/nonexistent-nearpm-dir/trace.json"));
}

TEST(ChromeExporterTest, TrackNamesCoverEveryResource) {
  EXPECT_FALSE(TraceProcessName(kTraceHostPid).empty());
  EXPECT_FALSE(TraceProcessName(kTracePciePid).empty());
  EXPECT_FALSE(TraceProcessName(kTraceSyncPid).empty());
  EXPECT_FALSE(TraceProcessName(TraceDevicePid(1)).empty());
  EXPECT_FALSE(TraceThreadName(kTraceHostPid, 3).empty());
  EXPECT_FALSE(
      TraceThreadName(TraceDevicePid(0), kTraceDispatcherTid).empty());
  EXPECT_FALSE(
      TraceThreadName(TraceDevicePid(0), kTraceUnitTidBase + 2).empty());
  EXPECT_FALSE(
      TraceThreadName(TraceDevicePid(0), kTraceMaintenanceTid).empty());
}

}  // namespace
}  // namespace nearpm
