// Tests for the serve-layer crash-state fuzzer: the systematic sweep stays
// green on the real protocol, each fault-injection ablation is caught (the
// oracle has teeth), and serve repros round-trip through the corpus format.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fuzz/corpus.h"
#include "src/serve/serve_fuzzer.h"

namespace nearpm {
namespace serve {
namespace {

// Keep unit-test sweeps quick: "right now" plus a few enumerated offsets per
// stop point is plenty to cover the protocol (the CLI runs the deep sweeps).
constexpr std::size_t kTestCandidates = 4;

TEST(ServeFuzzerTest, SystematicSweepIsGreen) {
  ServeFuzzConfig config;
  ServeFuzzer fuzzer(config);
  std::vector<ServeFuzzFailure> failures;
  const fuzz::SweepStats stats =
      fuzzer.Systematic(/*seed=*/1, kTestCandidates, &failures);
  EXPECT_GT(stats.cases, 0u);
  std::string detail;
  for (const ServeFuzzFailure& f : failures) {
    detail += std::string(ServeFailureKindName(f.result.failure)) + ": " +
              f.result.detail + "\n";
  }
  EXPECT_EQ(stats.failures, 0u) << detail;
}

TEST(ServeFuzzerTest, CrashBetweenFirstAndLastLocalCompleteRecovers) {
  // The tentpole scenario: the power fails after the first participant
  // signalled local-complete but before the last one did. Recovery must make
  // the MultiPut all-or-nothing (here: all, since the intent is durable).
  ServeFuzzConfig config;
  ServeFuzzer fuzzer(config);
  ServeFuzzCase c;
  c.seed = 1;  // seed 1 derives a 2-participant MultiPut
  ASSERT_GE(fuzzer.ParticipantCount(c), 2);
  c.phase = TxnStopPhase::kAfterApply;
  c.apply_ordinal = 0;
  for (const bool survive : {false, true}) {
    c.lines_survive = survive;
    const ServeCaseResult r = fuzzer.Run(c);
    EXPECT_TRUE(r.ok()) << ServeFailureKindName(r.failure) << ": " << r.detail;
  }
}

TEST(ServeFuzzerTest, CatchesBrokenTxnRedo) {
  ServeFuzzConfig config;
  config.break_txn_redo = true;
  ServeFuzzer fuzzer(config);
  std::vector<ServeFuzzFailure> failures;
  const fuzz::SweepStats stats =
      fuzzer.Systematic(/*seed=*/1, kTestCandidates, &failures);
  EXPECT_GT(stats.failures, 0u)
      << "scrubbing intents without redo must tear the MultiPut";
  bool saw_torn_txn = false;
  for (const ServeFuzzFailure& f : failures) {
    saw_torn_txn |= f.result.failure == ServeFailureKind::kTornTxn;
  }
  EXPECT_TRUE(saw_torn_txn);
}

TEST(ServeFuzzerTest, CatchesSkippedRecoveryReplay) {
  ServeFuzzConfig config;
  config.skip_recovery_replay = true;
  ServeFuzzer fuzzer(config);
  std::vector<ServeFuzzFailure> failures;
  const fuzz::SweepStats stats =
      fuzzer.Systematic(/*seed=*/1, kTestCandidates, &failures);
  EXPECT_GT(stats.failures, 0u)
      << "skipping the recovery replay must leave the open put durable";
  bool saw_uncommitted = false;
  for (const ServeFuzzFailure& f : failures) {
    saw_uncommitted |=
        f.result.failure == ServeFailureKind::kUncommittedDurable;
  }
  EXPECT_TRUE(saw_uncommitted);
}

TEST(ServeFuzzerTest, CatchesDisabledPpo) {
  ServeFuzzConfig config;
  config.enforce_ppo = false;
  ServeFuzzer fuzzer(config);
  std::vector<ServeFuzzFailure> failures;
  const fuzz::SweepStats stats =
      fuzzer.Systematic(/*seed=*/1, kTestCandidates, &failures);
  EXPECT_GT(stats.failures, 0u)
      << "the naive offload must violate the Section 4 invariants";
  bool saw_ppo = false;
  for (const ServeFuzzFailure& f : failures) {
    saw_ppo |= f.result.failure == ServeFailureKind::kPpoViolation;
  }
  EXPECT_TRUE(saw_ppo);
}

TEST(ServeFuzzerTest, ReproRoundTripsThroughCorpusFormat) {
  ServeFuzzConfig config;
  config.shards = 3;
  config.skip_recovery_replay = true;
  ServeFuzzer fuzzer(config);

  ServeFuzzCase c;
  c.seed = 9;
  c.warmup_ops = 5;
  c.txn_pairs = 3;
  c.phase = TxnStopPhase::kMidApply;
  c.apply_ordinal = 1;
  c.crash_offset = 321;
  c.lines_survive = true;

  const fuzz::CrashRepro repro = fuzzer.ToRepro(c, "violation", "unit test");
  const std::string json = fuzz::ReproToJson(repro);
  auto parsed = fuzz::ReproFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, "serve");

  const ServeFuzzConfig config2 = ServeFuzzer::ConfigFromRepro(*parsed);
  EXPECT_EQ(config2.shards, config.shards);
  EXPECT_EQ(config2.mode, config.mode);
  EXPECT_EQ(config2.enforce_ppo, config.enforce_ppo);
  EXPECT_EQ(config2.skip_recovery_replay, config.skip_recovery_replay);
  EXPECT_EQ(config2.break_txn_redo, config.break_txn_redo);

  auto c2 = ServeFuzzer::CaseFromRepro(*parsed);
  ASSERT_TRUE(c2.ok()) << c2.status().ToString();
  EXPECT_EQ(c2->seed, c.seed);
  EXPECT_EQ(c2->warmup_ops, c.warmup_ops);
  EXPECT_EQ(c2->txn_pairs, c.txn_pairs);
  EXPECT_EQ(c2->phase, c.phase);
  EXPECT_EQ(c2->apply_ordinal, c.apply_ordinal);
  EXPECT_EQ(c2->crash_offset, c.crash_offset);
  EXPECT_EQ(c2->lines_survive, c.lines_survive);

  const std::string name = fuzz::ReproFileName(repro);
  EXPECT_EQ(name, "serve_nearpm_md_skiprec_s9_mid_apply1_surv.json");
}

TEST(ServeFuzzerTest, BankReproFilesStayByteIdentical) {
  // The serve extension must not disturb the bank corpus format: a repro
  // without a "kind" field parses as bank and re-serializes identically.
  fuzz::CrashRepro repro;
  repro.seed = 3;
  repro.total_ops = 6;
  repro.crash_step = 2;
  const std::string json = fuzz::ReproToJson(repro);
  EXPECT_EQ(json.find("serve"), std::string::npos);
  auto parsed = fuzz::ReproFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, "bank");
  EXPECT_EQ(fuzz::ReproToJson(*parsed), json);
}

TEST(ServeFuzzerTest, PhaseNamesRoundTrip) {
  for (TxnStopPhase phase :
       {TxnStopPhase::kNone, TxnStopPhase::kAfterIntent,
        TxnStopPhase::kMidApply, TxnStopPhase::kAfterApply,
        TxnStopPhase::kAfterSync}) {
    auto parsed = ServeFuzzer::PhaseFromName(ServeFuzzer::PhaseName(phase));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, phase);
  }
  EXPECT_FALSE(ServeFuzzer::PhaseFromName("bogus").ok());
}

}  // namespace
}  // namespace serve
}  // namespace nearpm
