#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace nearpm {
namespace {

TEST(TypesTest, AlignHelpers) {
  EXPECT_EQ(AlignUp(0, 64), 0u);
  EXPECT_EQ(AlignUp(1, 64), 64u);
  EXPECT_EQ(AlignUp(64, 64), 64u);
  EXPECT_EQ(AlignUp(65, 64), 128u);
  EXPECT_EQ(AlignDown(0, 64), 0u);
  EXPECT_EQ(AlignDown(63, 64), 0u);
  EXPECT_EQ(AlignDown(64, 64), 64u);
  EXPECT_EQ(AlignDown(127, 64), 64u);
}

TEST(TypesTest, AddrRangeOverlap) {
  const AddrRange a{100, 200};
  EXPECT_TRUE(a.Overlaps({150, 160}));
  EXPECT_TRUE(a.Overlaps({0, 101}));
  EXPECT_TRUE(a.Overlaps({199, 300}));
  EXPECT_FALSE(a.Overlaps({200, 300}));
  EXPECT_FALSE(a.Overlaps({0, 100}));
  EXPECT_FALSE(a.Overlaps({150, 150}));  // empty range
  EXPECT_EQ(a.size(), 100u);
  EXPECT_TRUE(a.Contains(100));
  EXPECT_FALSE(a.Contains(200));
}

TEST(TypesTest, EmptyRangeBehaviour) {
  const AddrRange empty{50, 50};
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.Overlaps({0, 100}));
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = NotFound("missing pool");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing pool");
}

TEST(StatusTest, StatusOrValueAndError) {
  StatusOr<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  StatusOr<int> err(InvalidArgument("bad"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, SeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 10; ++i) {
    differ += a.Next() != b.Next();
  }
  EXPECT_GT(differ, 5);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoolProbability) {
  Rng rng(11);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) {
    trues += rng.NextBool(0.3);
  }
  EXPECT_NEAR(trues / 10000.0, 0.3, 0.03);
}

TEST(RunningStatTest, MeanAndStddev) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(HistogramTest, PercentilesMonotone) {
  Histogram h;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    h.Add(i);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.9));
  EXPECT_LE(h.Percentile(0.9), h.Percentile(0.99));
  EXPECT_GE(h.Percentile(0.99), 512u);
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(1.0), 0u);
}

TEST(HistogramTest, SingleSampleReturnsBucketUpperBound) {
  Histogram h;
  h.Add(100);  // bucket [64, 127]
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 100u);
  // Every quantile of a one-sample distribution lands in the same bucket
  // and reports its inclusive upper bound 2^7 - 1.
  EXPECT_EQ(h.Percentile(0.0), 127u);
  EXPECT_EQ(h.Percentile(0.5), 127u);
  EXPECT_EQ(h.Percentile(1.0), 127u);
}

TEST(HistogramTest, QuantileExtremesBracketTheSamples) {
  Histogram h;
  h.Add(1);     // bucket upper bound 1
  h.Add(1000);  // bucket [512, 1023], upper bound 1023
  // q=0 resolves to the smallest populated bucket, q=1 to the largest.
  EXPECT_EQ(h.Percentile(0.0), 1u);
  EXPECT_EQ(h.Percentile(1.0), 1023u);
  EXPECT_EQ(h.sum(), 1001u);
}

TEST(HistogramTest, MergeFromAccumulates) {
  Histogram a;
  Histogram b;
  a.Add(10);
  b.Add(1000);
  b.Add(1);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 1011u);
  EXPECT_EQ(a.Percentile(0.0), 1u);
  EXPECT_EQ(a.Percentile(1.0), 1023u);
}

TEST(GeoMeanTest, Basics) {
  EXPECT_DOUBLE_EQ(GeoMean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
  EXPECT_NEAR(GeoMean({2.0, 8.0}), 4.0, 1e-12);
}

}  // namespace
}  // namespace nearpm
