// Tests for the crash-state fuzzer itself: the sweep stays green on the
// sound configurations, replay is bit-for-bit deterministic, and -- the
// teeth check -- both known ways to break the machine (the Section 2.3
// no-PPO ablation and a fault-injected hardware recovery) are caught and
// shrink to small repros.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fuzz/corpus.h"
#include "src/fuzz/crash_fuzzer.h"

namespace nearpm {
namespace fuzz {
namespace {

std::string FirstFailureDetail(const std::vector<FuzzFailure>& failures) {
  if (failures.empty()) {
    return "(no failures)";
  }
  const FuzzFailure& f = failures.front();
  return std::string(FailureKindName(f.result.failure)) + " at seed=" +
         std::to_string(f.fuzz_case.seed) + " step=" +
         std::to_string(f.fuzz_case.crash_step) +
         (f.fuzz_case.mid_op ? "m" : "c") + " t=" +
         std::to_string(f.fuzz_case.crash_time) + ": " + f.result.detail;
}

struct SweepCase {
  Mechanism mechanism;
  ExecMode mode;
};

class FuzzGreenSweepTest : public ::testing::TestWithParam<SweepCase> {};

// With PPO enforced every mechanism/mode pair must survive every sampled
// crash state: all oracles green, across random instants and masks.
TEST_P(FuzzGreenSweepTest, RandomSweepStaysGreen) {
  FuzzConfig config;
  config.mechanism = GetParam().mechanism;
  config.mode = GetParam().mode;
  CrashFuzzer fuzzer(config);
  std::vector<FuzzFailure> failures;
  const SweepStats stats = fuzzer.RandomSweep(1, 5, 2, &failures);
  EXPECT_EQ(stats.cases, 10u);
  EXPECT_EQ(stats.failures, 0u) << FirstFailureDetail(failures);
}

std::vector<SweepCase> AllSweepCases() {
  std::vector<SweepCase> cases;
  for (Mechanism mech :
       {Mechanism::kLogging, Mechanism::kRedoLogging,
        Mechanism::kCheckpointing, Mechanism::kShadowPaging}) {
    for (ExecMode mode :
         {ExecMode::kCpuBaseline, ExecMode::kNdpSingleDevice,
          ExecMode::kNdpMultiSwSync, ExecMode::kNdpMultiDelayed}) {
      cases.push_back(SweepCase{mech, mode});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, FuzzGreenSweepTest,
                         ::testing::ValuesIn(AllSweepCases()),
                         [](const auto& sweep_info) {
                           return std::string(
                                      MechanismName(sweep_info.param.mechanism)) +
                                  "_" + ExecModeName(sweep_info.param.mode);
                         });

// Systematic mode enumerates every crash instant the trace exposes; the
// delayed-sync multi-device configuration is the adversarial one.
TEST(FuzzSystematicTest, SystematicSweepStaysGreen) {
  FuzzConfig config;
  config.mechanism = Mechanism::kLogging;
  config.mode = ExecMode::kNdpMultiDelayed;
  CrashFuzzer fuzzer(config);
  std::vector<FuzzFailure> failures;
  const SweepStats stats = fuzzer.Systematic(1, 4, 12, &failures);
  EXPECT_GT(stats.cases, 0u);
  EXPECT_EQ(stats.failures, 0u) << FirstFailureDetail(failures);
}

// --replay=seed:case must reproduce a sweep case bit-for-bit.
TEST(FuzzReplayTest, SweepCaseDerivationIsDeterministic) {
  FuzzConfig config;
  config.mechanism = Mechanism::kRedoLogging;
  config.mode = ExecMode::kNdpMultiDelayed;
  CrashFuzzer fuzzer(config);
  const FuzzCase a = fuzzer.BuildSweepCase(7, 3);
  const FuzzCase b = fuzzer.BuildSweepCase(7, 3);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.crash_step, b.crash_step);
  EXPECT_EQ(a.mid_op, b.mid_op);
  EXPECT_EQ(a.crash_time, b.crash_time);
  EXPECT_EQ(a.line_survival, b.line_survival);

  const CaseResult ra = fuzzer.Run(a);
  const CaseResult rb = fuzzer.Run(b);
  EXPECT_EQ(ra.failure, rb.failure);
  EXPECT_EQ(ra.matched_prefix, rb.matched_prefix);
  EXPECT_EQ(ra.committed, rb.committed);
}

// The Section 2.3 ablation: without PPO the differential oracle must flag
// at least one crash state (the in-flight undo log is lost while the
// in-place update survives), and the failure must shrink while staying a
// failure.
TEST(FuzzTeethTest, PpoAblationIsCaught) {
  FuzzConfig config;
  config.mechanism = Mechanism::kLogging;
  config.mode = ExecMode::kNdpMultiDelayed;
  config.enforce_ppo = false;
  CrashFuzzer fuzzer(config);

  std::vector<FuzzFailure> failures;
  for (std::uint64_t seed = 1; seed <= 6 && failures.empty(); ++seed) {
    fuzzer.Systematic(seed, 6, 16, &failures);
  }
  ASSERT_FALSE(failures.empty())
      << "the no-PPO ablation produced no oracle failure";

  CaseResult min_result;
  const FuzzCase minimal = fuzzer.Shrink(failures.front().fuzz_case,
                                         &min_result);
  EXPECT_FALSE(min_result.ok());
  EXPECT_LE(minimal.crash_step, failures.front().fuzz_case.crash_step);
  EXPECT_LE(minimal.total_ops, failures.front().fuzz_case.total_ops);
}

// Fault injection: with the hardware recovery's journalled replay disabled
// (skip_recovery_replay), a crash between two deferred cross-device log
// invalidations rolls back an already-committed operation while a later one
// stays applied -- a non-prefix state the differential oracle must catch.
// The acceptance bar: the shrunk repro is at most 10 operations long, and
// the very same crash plan passes once the recovery is intact again.
TEST(FuzzTeethTest, BrokenRecoveryIsCaughtAndShrinks) {
  FuzzConfig config;
  config.mechanism = Mechanism::kLogging;
  config.mode = ExecMode::kNdpMultiDelayed;
  config.break_recovery = true;
  CrashFuzzer fuzzer(config);

  std::vector<FuzzFailure> failures;
  for (std::uint64_t seed = 1; seed <= 8 && failures.empty(); ++seed) {
    fuzzer.Systematic(seed, 8, 16, &failures);
  }
  ASSERT_FALSE(failures.empty())
      << "the broken hardware recovery went undetected";

  CaseResult min_result;
  const FuzzCase minimal = fuzzer.Shrink(failures.front().fuzz_case,
                                         &min_result);
  EXPECT_FALSE(min_result.ok());
  EXPECT_LE(minimal.total_ops, 10u) << "shrinking left a large repro";

  // Same schedule, same crash plan, recovery fixed: must pass every oracle.
  FuzzConfig fixed = config;
  fixed.break_recovery = false;
  const CaseResult healthy = CrashFuzzer(fixed).Run(minimal);
  EXPECT_TRUE(healthy.ok())
      << FailureKindName(healthy.failure) << ": " << healthy.detail;
}

// Corpus round trip: case -> repro -> JSON -> repro -> case is lossless.
TEST(FuzzCorpusRoundTripTest, JsonRoundTripIsLossless) {
  FuzzConfig config;
  config.mechanism = Mechanism::kShadowPaging;
  config.mode = ExecMode::kNdpMultiSwSync;
  config.enforce_ppo = false;
  CrashFuzzer fuzzer(config);

  FuzzCase c;
  c.seed = 42;
  c.total_ops = 7;
  c.crash_step = 4;
  c.mid_op = true;
  c.crash_time = 123456;
  c.line_survival = {true, false, true};

  const CrashRepro repro = fuzzer.ToRepro(c, "violation", "round trip");
  auto parsed = ReproFromJson(ReproToJson(repro));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->mechanism, Mechanism::kShadowPaging);
  EXPECT_EQ(parsed->mode, ExecMode::kNdpMultiSwSync);
  EXPECT_FALSE(parsed->enforce_ppo);
  EXPECT_FALSE(parsed->break_recovery);
  EXPECT_EQ(parsed->expect, "violation");
  EXPECT_EQ(parsed->note, "round trip");

  const FuzzCase back = CrashFuzzer::CaseFromRepro(*parsed);
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.total_ops, c.total_ops);
  EXPECT_EQ(back.crash_step, c.crash_step);
  EXPECT_EQ(back.mid_op, c.mid_op);
  EXPECT_EQ(back.crash_time, c.crash_time);
  EXPECT_EQ(back.line_survival, c.line_survival);
}

}  // namespace
}  // namespace fuzz
}  // namespace nearpm
