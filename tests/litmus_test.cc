// Conformance-suite tests: litmus grammar round-trips, the differential
// harness stays clean on the generator grid, both teeth modes (mutated spec,
// weakened checker) produce shrinkable disagreements, and every checked-in
// corpus repro still replays. The deep sweep (500+ programs, full crash-point
// enumeration) lives in CI (`nearpm_litmus --systematic`); these tests keep
// the same machinery honest at unit-test budget.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/spec/conformance.h"
#include "src/spec/litmus.h"
#include "src/spec/model.h"

namespace nearpm {
namespace spec {
namespace {

TEST(LitmusGrammar, GridRoundTripsThroughText) {
  const std::vector<LitmusProgram> grid = GenerateGrid(1, 200);
  ASSERT_GE(grid.size(), 200u);
  for (const LitmusProgram& p : grid) {
    StatusOr<LitmusProgram> parsed = LitmusProgram::Parse(p.Text());
    ASSERT_TRUE(parsed.ok()) << p.name << ": " << parsed.status().message();
    EXPECT_EQ(parsed.value().Text(), p.Text()) << p.name;
  }
}

TEST(LitmusGrammar, GeneratorIsDeterministic) {
  const std::vector<LitmusProgram> a = GenerateGrid(42, 64);
  const std::vector<LitmusProgram> b = GenerateGrid(42, 64);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].Text(), b[i].Text());
  }
}

TEST(LitmusGrammar, RejectsMalformedPrograms) {
  EXPECT_FALSE(LitmusProgram::Parse("w0 L9 1").ok());   // no such location
  EXPECT_FALSE(LitmusProgram::Parse("w2 L0 1").ok());   // no such thread
  EXPECT_FALSE(LitmusProgram::Parse("log0 S0").ok());   // missing location
  EXPECT_FALSE(LitmusProgram::Parse("q0 L0").ok());     // unknown opcode
  EXPECT_FALSE(LitmusProgram::Parse("w0 L0 0").ok());   // fill must be 1..9
}

TEST(SpecModel, FinalStateOfStraightLineProgramIsAllowed) {
  // After `w0 L0 3; p0 L0; sync0` the fully-persisted image must be among
  // the allowed crash states, and so must the initial (all-dropped) image.
  StatusOr<LitmusProgram> p = LitmusProgram::Parse("w0 L0 3; p0 L0; sync0");
  ASSERT_TRUE(p.ok());
  const SpecExec exec =
      Simulate(p.value(), p.value().instrs.size(), true, SpecMutation::kNone);
  const std::vector<std::string> allowed = AllowedStates(exec);
  EXPECT_FALSE(allowed.empty());
  const std::string persisted = CanonState(exec.vol);
  EXPECT_NE(std::find(allowed.begin(), allowed.end(), persisted),
            allowed.end())
      << "fully persisted state missing from the allowed set";
}

TEST(Conformance, GridPrefixSweepStaysClean) {
  // A slice of the deterministic grid, both enforce legs, full prefix and
  // crash-point sweep per program. CI's litmus-smoke job runs the 500+
  // program systematic version of this.
  const std::vector<LitmusProgram> grid = GenerateGrid(3, 24);
  ConformanceConfig config;
  ConformanceStats stats;
  for (std::size_t i = 0; i < 24; ++i) {
    const std::vector<Disagreement> dis =
        CheckProgramBothLegs(grid[i], config, &stats);
    for (const Disagreement& d : dis) {
      ADD_FAILURE() << grid[i].name << " [" << DisagreementKindName(d.kind)
                    << " prefix=" << d.prefix_len << "] " << d.detail;
    }
  }
  EXPECT_GT(stats.crash_states_checked, 0u);
  EXPECT_GT(stats.prefixes, 0u);
}

TEST(Conformance, MutatedSpecHasTeeth) {
  // An atomic-requests spec forgets torn outcomes; the healthy machine must
  // disagree on some grid program, and the shrunk repro must replay.
  ConformanceConfig config;
  config.mutation = SpecMutation::kAtomicRequests;
  const std::vector<LitmusProgram> grid = GenerateGrid(1, 64);
  for (const LitmusProgram& p : grid) {
    for (const bool enforce : {true, false}) {
      config.enforce = enforce;
      ConformanceStats stats;
      const std::vector<Disagreement> dis = CheckProgram(p, config, &stats);
      if (dis.empty()) continue;
      const LitmusProgram shrunk =
          ShrinkDisagreement(p, config, dis.front().kind);
      EXPECT_LE(shrunk.instrs.size(), p.instrs.size());
      const LitmusRepro repro = MakeRepro(shrunk, config, dis.front());
      const Status replayed = ReplayLitmusRepro(repro);
      EXPECT_TRUE(replayed.ok()) << replayed.message();
      return;
    }
  }
  FAIL() << "no grid program disagreed with the atomic-requests mutation";
}

TEST(Conformance, WeakenedCheckerHasTeeth) {
  // Disabling invariant 2 in the PpoChecker must surface as checker-missed
  // on some program whose trace witnesses the race.
  ConformanceConfig config;
  config.weaken_checker = 0x2;  // bit 1 = invariant 2
  const std::vector<LitmusProgram> grid = GenerateGrid(1, 64);
  for (const LitmusProgram& p : grid) {
    for (const bool enforce : {true, false}) {
      config.enforce = enforce;
      ConformanceStats stats;
      const std::vector<Disagreement> dis = CheckProgram(p, config, &stats);
      for (const Disagreement& d : dis) {
        if (d.kind != DisagreementKind::kCheckerMissed) continue;
        const LitmusProgram shrunk = ShrinkDisagreement(p, config, d.kind);
        const LitmusRepro repro = MakeRepro(shrunk, config, d);
        const Status replayed = ReplayLitmusRepro(repro);
        EXPECT_TRUE(replayed.ok()) << replayed.message();
        return;
      }
    }
  }
  FAIL() << "no grid program surfaced the disabled invariant";
}

TEST(Conformance, ReproJsonRoundTrips) {
  LitmusRepro repro;
  repro.name = "round-trip";
  repro.text = "log1 S0 L0; app1 S1 L0; w1 L0 1";
  repro.enforce = false;
  repro.mutation = SpecMutation::kWritesDurable;
  repro.weaken_checker = 0x5;
  repro.kind = DisagreementKind::kSanitizerMissed;
  repro.detail = "detail with \"quotes\" and \\ backslash";
  StatusOr<LitmusRepro> parsed = LitmusRepro::Parse(repro.Write());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().name, repro.name);
  EXPECT_EQ(parsed.value().text, repro.text);
  EXPECT_EQ(parsed.value().enforce, repro.enforce);
  EXPECT_EQ(parsed.value().mutation, repro.mutation);
  EXPECT_EQ(parsed.value().weaken_checker, repro.weaken_checker);
  EXPECT_EQ(parsed.value().kind, repro.kind);
  EXPECT_EQ(parsed.value().detail, repro.detail);
}

TEST(Conformance, CheckedInCorpusReplays) {
  // Every repro under tests/litmus_corpus must still reproduce its recorded
  // disagreement (and the healthy configuration must stay clean).
  const std::filesystem::path dir = NEARPM_LITMUS_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::ostringstream buf;
    buf << in.rdbuf();
    StatusOr<LitmusRepro> repro = LitmusRepro::Parse(buf.str());
    ASSERT_TRUE(repro.ok())
        << entry.path() << ": " << repro.status().message();
    const Status status = ReplayLitmusRepro(repro.value());
    EXPECT_TRUE(status.ok()) << entry.path() << ": " << status.message();
    ++replayed;
  }
  EXPECT_GE(replayed, 3u) << "litmus corpus should hold the teeth anchors";
}

}  // namespace
}  // namespace spec
}  // namespace nearpm
