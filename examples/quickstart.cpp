// Quickstart: a failure-atomic persistent counter on NearPM.
//
// Creates a simulated platform (two interleaved NearPM devices, delayed
// synchronization), a persistent heap with undo logging, updates a record
// transactionally, pulls the plug, and recovers.
//
// Pass --trace-out=<file> to capture the full event trace of the run --
// every command post, FIFO entry, unit execution, persist, the crash and
// the recovery replay -- as Chrome trace-event JSON, then load it in
// https://ui.perfetto.dev (or chrome://tracing) to see one lane per
// simulated resource.
//
//   $ ./examples/quickstart
//   $ ./examples/quickstart --trace-out=quickstart.trace.json
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/rng.h"
#include "src/pmlib/heap.h"
#include "src/trace/chrome_exporter.h"
#include "src/trace/ppo_checker.h"
#include "src/trace/recorder.h"

using namespace nearpm;

int main(int argc, char** argv) {
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    }
  }

  // 1. The platform: mode, devices, units -- Table 3 defaults.
  RuntimeOptions options;
  options.mode = ExecMode::kNdpMultiDelayed;  // two devices, PPO delayed sync
  Runtime rt(options);
  TraceRecorder recorder;
  if (!trace_out.empty()) {
    rt.AttachTrace(&recorder);
  }

  // 2. A persistent heap: pool + allocator + undo-logging provider.
  PoolArena arena;
  HeapOptions heap_options;
  heap_options.mechanism = Mechanism::kLogging;
  heap_options.data_size = 1 << 20;
  auto heap_or = PersistentHeap::Create(rt, arena, heap_options);
  if (!heap_or.ok()) {
    std::fprintf(stderr, "heap creation failed: %s\n",
                 heap_or.status().ToString().c_str());
    return 1;
  }
  PersistentHeap& heap = **heap_or;

  struct Record {
    std::uint64_t counter;
    std::uint64_t checksum;
  };
  const PmAddr rec_addr = heap.root();

  // 3. A failure-atomic operation: the undo log is created near memory
  //    (NearPM_undolog_create), the update runs on the CPU, and the log is
  //    deleted off the critical path after a cross-device sync.
  auto update = [&](std::uint64_t value) {
    (void)heap.BeginOp(0);
    Record rec{value, value ^ 0xabcdef};
    (void)heap.Store(0, rec_addr, rec);
    (void)heap.CommitOp(0);
  };
  for (std::uint64_t i = 1; i <= 10; ++i) {
    update(i);
  }
  rt.DrainDevices(0);
  std::printf("committed counter=10, simulated time %.2f us\n",
              static_cast<double>(rt.Now(0)) / 1000.0);

  // 4. Start an 11th update and pull the plug mid-operation.
  (void)heap.BeginOp(0);
  (void)heap.Store(0, rec_addr, Record{11, 11 ^ 0xabcdef});
  Rng rng(42);
  const CrashReport report = rt.InjectCrash(rng);
  std::printf("crash: %llu NDP requests dropped, %llu truncated, "
              "%llu CPU lines lost\n",
              static_cast<unsigned long long>(report.requests_dropped),
              static_cast<unsigned long long>(report.requests_truncated),
              static_cast<unsigned long long>(report.cpu_lines_dropped));

  // 5. Recover: hardware replay already ran inside InjectCrash; the
  //    mechanism's software recovery rolls the torn operation back.
  heap.DropVolatile();
  if (!heap.Recover().ok()) {
    std::fprintf(stderr, "recovery failed\n");
    return 1;
  }
  auto rec = heap.Load<Record>(0, rec_addr);
  std::printf("recovered counter=%llu (checksum %s)\n",
              static_cast<unsigned long long>(rec->counter),
              rec->checksum == (rec->counter ^ 0xabcdef) ? "ok" : "CORRUPT");

  // 6. Export the trace and assert the PPO invariants over it.
  if (!trace_out.empty()) {
    if (!WriteChromeTraceFile(recorder, trace_out)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 1;
    }
    const auto violations = PpoChecker{}.Check(recorder);
    std::printf("trace: %llu events -> %s\n%s",
                static_cast<unsigned long long>(recorder.recorded()),
                trace_out.c_str(), PpoChecker::Report(violations).c_str());
    if (!violations.empty()) {
      return 1;
    }
  }
  return rec->counter == 10 ? 0 : 1;
}
