// OLTP offload demo: TPCC-lite under the four comparison points of the
// paper's evaluation (Section 8.1), printing per-configuration virtual-time
// results -- a miniature of Figures 15/16 for one workload.
//
//   $ ./examples/tpcc_offload
#include <cstdio>

#include "src/common/rng.h"
#include "src/workloads/workload.h"

using namespace nearpm;

namespace {

struct Result {
  double total_us;
  double cc_us;
  double overlap_us;
};

Result Run(ExecMode mode) {
  RuntimeOptions options;
  options.mode = mode;
  options.pm_size = 256ull << 20;
  options.retain_crash_state = false;  // pure performance run
  Runtime rt(options);
  PoolArena arena;

  auto workload = CreateWorkload("tpcc");
  WorkloadConfig config;
  config.mechanism = Mechanism::kLogging;
  config.data_size = 8ull << 20;
  if (!workload->Setup(rt, arena, config).ok()) {
    std::abort();
  }
  rt.DrainDevices(0);
  const RuntimeStats before = rt.stats();

  Rng rng(13);
  for (int tx = 0; tx < 500; ++tx) {
    if (!workload->RunOp(0, rng).ok()) {
      std::abort();
    }
  }
  rt.DrainDevices(0);

  Result r;
  r.total_us = (static_cast<double>(rt.stats().MaxThreadTime()) -
                static_cast<double>(before.MaxThreadTime())) /
               1000.0;
  r.cc_us = (rt.stats().CcRegionNs() - before.CcRegionNs()) / 1000.0;
  r.overlap_us = (rt.stats().OverlapNs() - before.OverlapNs()) / 1000.0;
  return r;
}

}  // namespace

int main() {
  std::printf("TPCC-lite, 500 transactions, undo logging\n");
  std::printf("%-22s %12s %12s %12s %10s %10s\n", "configuration",
              "total (us)", "cc (us)", "overlap(us)", "speedup", "cc speedup");
  const Result base = Run(ExecMode::kCpuBaseline);
  for (ExecMode mode :
       {ExecMode::kCpuBaseline, ExecMode::kNdpSingleDevice,
        ExecMode::kNdpMultiSwSync, ExecMode::kNdpMultiDelayed}) {
    const Result r = mode == ExecMode::kCpuBaseline ? base : Run(mode);
    std::printf("%-22s %12.1f %12.1f %12.1f %9.2fx %9.2fx\n",
                ExecModeName(mode), r.total_us, r.cc_us, r.overlap_us,
                base.total_us / r.total_us, base.cc_us / r.cc_us);
  }
  return 0;
}
