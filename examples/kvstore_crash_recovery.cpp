// Crash-recovery demo on a real data structure: the PMDK-style B-tree under
// repeated power failures, across all three crash-consistency mechanisms.
//
// Each round runs a burst of inserts, fails the power at an arbitrary point,
// recovers, and re-verifies the full structural invariant set (key order,
// subtree bounds, value integrity, count bookkeeping).
//
//   $ ./examples/kvstore_crash_recovery
#include <cstdio>

#include "src/common/rng.h"
#include "src/workloads/workload.h"

using namespace nearpm;

int main() {
  for (Mechanism mech : {Mechanism::kLogging, Mechanism::kCheckpointing,
                         Mechanism::kShadowPaging}) {
    RuntimeOptions options;
    options.mode = ExecMode::kNdpMultiDelayed;
    options.pm_size = 256ull << 20;
    Runtime rt(options);
    PoolArena arena;

    auto workload = CreateWorkload("btree");
    WorkloadConfig config;
    config.mechanism = mech;
    config.initial_keys = 300;
    config.data_size = 8ull << 20;
    if (!workload->Setup(rt, arena, config).ok()) {
      std::fprintf(stderr, "setup failed\n");
      return 1;
    }
    rt.DrainDevices(0);

    Rng rng(7);
    int survived = 0;
    for (int round = 0; round < 10; ++round) {
      const int burst = 5 + static_cast<int>(rng.NextBounded(40));
      for (int op = 0; op < burst; ++op) {
        if (!workload->RunOp(0, rng).ok()) {
          std::fprintf(stderr, "op failed\n");
          return 1;
        }
      }
      rt.InjectCrash(rng);           // power failure, NDP work in flight
      workload->DropVolatile();      // the process dies with the machine
      if (!workload->Recover().ok()) {
        std::fprintf(stderr, "recovery failed\n");
        return 1;
      }
      const Status verdict = workload->Verify();
      if (!verdict.ok()) {
        std::fprintf(stderr, "%s: INVARIANT VIOLATION after round %d: %s\n",
                     MechanismName(mech), round, verdict.ToString().c_str());
        return 1;
      }
      ++survived;
    }
    std::printf("%-14s survived %d crash/recover rounds, invariants intact\n",
                MechanismName(mech), survived);
  }
  return 0;
}
