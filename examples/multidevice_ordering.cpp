// Partitioned Persist Ordering demonstrated: the Section 2.3 inconsistency,
// reproduced with PPO disabled and fixed with PPO enabled.
//
// A 4 kB persistent object (spanning both interleaved NearPM devices) is
// updated in place while its undo log is still being copied near memory.
// The power fails. Without PPO the torn update survives unrecovered; with
// PPO the write-back ordering guarantees the log is durable first, so
// recovery restores the old object on both devices.
//
//   $ ./examples/multidevice_ordering
#include <cstdio>
#include <vector>

#include "src/common/rng.h"
#include "src/pmlib/heap.h"

using namespace nearpm;

namespace {

// Returns the number of bytes holding the OLD value after crash+recovery.
int RunScenario(bool enforce_ppo) {
  RuntimeOptions options;
  options.mode = ExecMode::kNdpMultiDelayed;
  options.enforce_ppo = enforce_ppo;
  options.pending_line_survival = 1.0;  // the unlucky eviction
  Runtime rt(options);
  PoolArena arena;
  HeapOptions heap_options;
  heap_options.mechanism = Mechanism::kLogging;
  heap_options.data_size = 1 << 20;
  auto heap = PersistentHeap::Create(rt, arena, heap_options);
  const PmAddr obj = (*heap)->root();

  // Committed old state: 4 kB of 0xAA.
  (void)(*heap)->BeginOp(0);
  std::vector<std::uint8_t> old_value(4096, 0xAA);
  (void)(*heap)->Write(0, obj, old_value);
  (void)(*heap)->CommitOp(0);
  rt.DrainDevices(0);

  // Torn operation: overwrite with 0xBB; the 4 kB undo copy is still in
  // flight on the devices when the power fails.
  (void)(*heap)->BeginOp(0);
  std::vector<std::uint8_t> new_value(4096, 0xBB);
  (void)(*heap)->Write(0, obj, new_value);

  Rng rng(5);
  const CrashReport report = rt.InjectCrash(rng);
  std::printf("  crash: %llu requests dropped, %llu truncated, "
              "frontier sync %llu\n",
              static_cast<unsigned long long>(report.requests_dropped),
              static_cast<unsigned long long>(report.requests_truncated),
              static_cast<unsigned long long>(report.frontier_sync));

  (*heap)->DropVolatile();
  (void)(*heap)->Recover();
  std::vector<std::uint8_t> out(4096);
  (void)(*heap)->Read(0, obj, out);
  int old_bytes = 0;
  for (std::uint8_t b : out) {
    old_bytes += b == 0xAA;
  }
  return old_bytes;
}

}  // namespace

int main() {
  std::printf("--- naive offload (enforce_ppo = false) ---\n");
  const int naive = RunScenario(false);
  std::printf("  recovered object: %d/4096 bytes hold the pre-crash value\n",
              naive);
  std::printf("  -> %s\n\n",
              naive == 4096 ? "consistent" : "INCONSISTENT (torn update kept)");

  std::printf("--- NearPM with PPO (enforce_ppo = true) ---\n");
  const int ppo = RunScenario(true);
  std::printf("  recovered object: %d/4096 bytes hold the pre-crash value\n",
              ppo);
  std::printf("  -> %s\n", ppo == 4096 ? "consistent" : "INCONSISTENT");

  // The demo succeeds when PPO fixes the inconsistency the naive mode shows.
  return (ppo == 4096 && naive != 4096) ? 0 : 1;
}
